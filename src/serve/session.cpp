#include "serve/session.hpp"

#include <utility>

#include "common/contracts.hpp"
#include "core/bmf_estimator.hpp"
#include "core/univariate_bmf.hpp"
#include "telemetry/telemetry.hpp"

namespace bmfusion::serve {

using core::BmfConfig;
using core::CrossValidationConfig;
using core::EarlyStageKnowledge;
using core::GaussianMoments;
using core::HyperSelection;
using linalg::Matrix;
using linalg::Vector;

namespace {

[[noreturn]] void spec_error(const std::string& detail) {
  throw DataError("malformed estimator spec",
                  ErrorContext{}.with_operation("serve_open").with_detail(
                      detail));
}

}  // namespace

Vector parse_vector(const JsonValue& value, const std::string& what) {
  if (!value.is_array()) spec_error(what + " must be an array of numbers");
  std::vector<double> data;
  data.reserve(value.as_array().size());
  for (const JsonValue& cell : value.as_array()) {
    if (!cell.is_number()) spec_error(what + " must be an array of numbers");
    data.push_back(cell.as_number());
  }
  return Vector(std::move(data));
}

Matrix parse_matrix(const JsonValue& value, const std::string& what) {
  if (!value.is_array() || value.as_array().empty()) {
    spec_error(what + " must be a non-empty array of rows");
  }
  const auto& rows = value.as_array();
  const Vector first = parse_vector(rows[0], what + " row");
  Matrix out(rows.size(), first.size());
  out.set_row(0, first);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const Vector row = parse_vector(rows[r], what + " row");
    if (row.size() != first.size()) spec_error(what + " rows are ragged");
    out.set_row(r, row);
  }
  return out;
}

namespace {

GaussianMoments parse_moments(const JsonValue& value,
                              const std::string& what) {
  const JsonValue* mean = value.find("mean");
  const JsonValue* covariance = value.find("covariance");
  if (mean == nullptr || covariance == nullptr) {
    spec_error(what + " needs \"mean\" and \"covariance\"");
  }
  GaussianMoments moments;
  moments.mean = parse_vector(*mean, what + ".mean");
  moments.covariance = parse_matrix(*covariance, what + ".covariance");
  return moments;
}

std::size_t parse_count(const JsonValue& value, const std::string& what) {
  if (!value.is_number() || value.as_number() < 0.0) {
    spec_error(what + " must be a nonnegative number");
  }
  return static_cast<std::size_t>(value.as_number());
}

CrossValidationConfig parse_cv_config(const JsonValue& spec) {
  CrossValidationConfig cv;
  const JsonValue* config = spec.find("config");
  if (config == nullptr) return cv;
  if (const JsonValue* v = config->find("folds")) {
    cv.folds = parse_count(*v, "config.folds");
  }
  if (const JsonValue* v = config->find("kappa_points")) {
    cv.kappa_points = parse_count(*v, "config.kappa_points");
  }
  if (const JsonValue* v = config->find("nu_points")) {
    cv.nu_points = parse_count(*v, "config.nu_points");
  }
  cv.kappa_min = config->number_or("kappa_min", cv.kappa_min);
  cv.kappa_max = config->number_or("kappa_max", cv.kappa_max);
  cv.nu_offset_min = config->number_or("nu_offset_min", cv.nu_offset_min);
  cv.nu_offset_max = config->number_or("nu_offset_max", cv.nu_offset_max);
  if (const JsonValue* v = config->find("threads")) {
    cv.threads = parse_count(*v, "config.threads");
  }
  return cv;
}

HyperSelection parse_selection(const JsonValue& spec) {
  const JsonValue* config = spec.find("config");
  if (config == nullptr) return HyperSelection::kCrossValidation;
  const std::string selection = config->string_or("selection", "cv");
  if (selection == "cv") return HyperSelection::kCrossValidation;
  if (selection == "evidence") return HyperSelection::kEvidence;
  spec_error("config.selection must be \"cv\" or \"evidence\"");
}

bool parse_shift_scale(const JsonValue& spec) {
  const JsonValue* config = spec.find("config");
  if (config == nullptr) return true;
  const JsonValue* v = config->find("shift_scale");
  if (v == nullptr) return true;
  if (!v->is_bool()) spec_error("config.shift_scale must be a boolean");
  return v->as_bool();
}

fusion::PopulationSpec parse_population_spec(const JsonValue& value,
                                             std::size_t index) {
  const std::string what = "populations[" + std::to_string(index) + "]";
  if (!value.is_object()) spec_error(what + " must be an object");
  fusion::PopulationSpec spec;
  std::string fallback_name = "p";
  fallback_name += std::to_string(index);
  spec.name = value.string_or("name", fallback_name);
  const JsonValue* early = value.find("early");
  if (early == nullptr) spec_error(what + " needs an \"early\" stage");
  spec.early.moments = parse_moments(*early, what + ".early");
  if (const JsonValue* nominal = early->find("nominal")) {
    spec.early.nominal = parse_vector(*nominal, what + ".early.nominal");
  } else {
    // Absent nominal defaults to the early-stage mean, so fusion specs
    // that never shift/scale stay minimal.
    spec.early.nominal = spec.early.moments.mean;
  }
  if (const JsonValue* nominal = value.find("nominal")) {
    spec.late_nominal = parse_vector(*nominal, what + ".nominal");
  }
  return spec;
}

}  // namespace

std::unique_ptr<fusion::MultiPopulationEstimator> make_fusion_estimator(
    const JsonValue& spec) {
  if (!spec.is_object()) spec_error("spec must be a JSON object");
  const JsonValue* populations = spec.find("populations");
  if (populations == nullptr || !populations->is_array() ||
      populations->as_array().empty()) {
    spec_error("fusion needs a non-empty \"populations\" array");
  }
  std::vector<fusion::PopulationSpec> specs;
  specs.reserve(populations->as_array().size());
  for (std::size_t p = 0; p < populations->as_array().size(); ++p) {
    specs.push_back(parse_population_spec(populations->as_array()[p], p));
  }
  fusion::FusionConfig config;
  config.bmf.cv = parse_cv_config(spec);
  config.bmf.selection = parse_selection(spec);
  config.bmf.apply_shift_scale = parse_shift_scale(spec);
  if (const JsonValue* knobs = spec.find("config")) {
    config.shrinkage = knobs->number_or("shrinkage", config.shrinkage);
    config.min_eigenvalue =
        knobs->number_or("min_eigenvalue", config.min_eigenvalue);
    config.signal_floor =
        knobs->number_or("signal_floor", config.signal_floor);
  }
  auto estimator = std::make_unique<fusion::MultiPopulationEstimator>(
      std::move(specs), config);
  if (const JsonValue* correlation = spec.find("correlation")) {
    estimator->set_correlation(parse_matrix(*correlation, "correlation"));
  }
  return estimator;
}

std::unique_ptr<core::MomentEstimator> make_estimator(const JsonValue& spec) {
  if (!spec.is_object()) spec_error("spec must be a JSON object");
  const std::string kind = spec.string_or("estimator", "");
  std::unique_ptr<core::MomentEstimator> estimator;
  if (kind == "mle") {
    estimator = std::make_unique<core::MleEstimator>();
  } else if (kind == "bmf") {
    const JsonValue* early = spec.find("early");
    if (early == nullptr) spec_error("bmf needs an \"early\" stage");
    EarlyStageKnowledge knowledge;
    knowledge.moments = parse_moments(*early, "early");
    if (const JsonValue* nominal = early->find("nominal")) {
      knowledge.nominal = parse_vector(*nominal, "early.nominal");
    }
    BmfConfig config;
    config.cv = parse_cv_config(spec);
    config.selection = parse_selection(spec);
    config.apply_shift_scale = parse_shift_scale(spec);
    estimator = std::make_unique<core::BmfEstimator>(std::move(knowledge),
                                                     config);
  } else if (kind == "univariate-bmf") {
    const JsonValue* early = spec.find("early");
    if (early == nullptr) spec_error("univariate-bmf needs an \"early\" stage");
    estimator = std::make_unique<core::UnivariateBmfEstimator>(
        parse_moments(*early, "early"), parse_cv_config(spec));
  } else {
    spec_error("unknown estimator \"" + kind +
               "\" (expected mle, bmf or univariate-bmf)");
  }
  if (const JsonValue* nominal = spec.find("nominal")) {
    estimator->set_nominal(parse_vector(*nominal, "nominal"));
  }
  return estimator;
}

Session::Session(std::string id,
                 std::unique_ptr<core::MomentEstimator> estimator)
    : id_(std::move(id)), estimator_(std::move(estimator)) {
  BMFUSION_REQUIRE(estimator_ != nullptr, "session needs an estimator");
}

Session::Session(std::string id,
                 std::unique_ptr<fusion::MultiPopulationEstimator> fusion)
    : id_(std::move(id)), fusion_(std::move(fusion)) {
  BMFUSION_REQUIRE(fusion_ != nullptr, "session needs an estimator");
}

std::size_t Session::population_count() const {
  return fusion_ != nullptr ? fusion_->population_count() : 1;
}

std::size_t Session::observed_total() const {
  if (fusion_ == nullptr) return estimator_->observed_count();
  std::size_t total = 0;
  for (std::size_t p = 0; p < fusion_->population_count(); ++p) {
    total += fusion_->observed_count(p);
  }
  return total;
}

void Session::check_population(std::size_t population,
                               const char* operation) const {
  const std::size_t count =
      fusion_ != nullptr ? fusion_->population_count() : 1;
  if (population >= count) {
    throw DataError("population id is out of range",
                    ErrorContext{}
                        .with_operation(operation)
                        .with_index(population)
                        .with_detail(std::to_string(count) +
                                     " population(s) in session " + id_));
  }
}

std::string Session::estimator_name() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fusion_ != nullptr ? "fusion" : std::string(estimator_->name());
}

std::size_t Session::observe(const Matrix& samples, std::size_t population) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_population(population, "serve_observe");
  if (fusion_ != nullptr) {
    fusion_->observe(population, samples);
  } else {
    estimator_->observe(samples);
  }
  return observed_total();
}

bool Session::absorb(const stats::StatsShard& shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_population(static_cast<std::size_t>(shard.population_id),
                   "serve_absorb");
  const std::pair<std::uint64_t, std::uint64_t> key{shard.population_id,
                                                    shard.shard_id};
  if (!absorbed_shards_.insert(key).second) return false;
  try {
    if (fusion_ != nullptr) {
      fusion_->absorb(shard);
    } else {
      estimator_->absorb(shard);
    }
  } catch (...) {
    absorbed_shards_.erase(key);
    throw;
  }
  return true;
}

stats::StatsShard Session::export_shard(std::uint64_t shard_id,
                                        std::size_t population) const {
  std::lock_guard<std::mutex> lock(mutex_);
  check_population(population, "serve_stats");
  return fusion_ != nullptr ? fusion_->export_shard(population, shard_id)
                            : estimator_->export_shard(shard_id);
}

core::EstimateResult Session::estimate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fusion_ != nullptr) {
    throw DataError("fusion sessions answer joint estimates",
                    ErrorContext{}.with_operation("serve_estimate")
                        .with_detail("id: " + id_));
  }
  // The heavy lifting (the CV grid sweep) runs on the shared parallel_for
  // pool; this connection thread only holds the session lock.
  BMF_SCOPED_TIMER_US("serve.estimate_us");
  return estimator_->snapshot();
}

fusion::FusionSnapshot Session::estimate_fusion() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fusion_ == nullptr) {
    throw DataError("session is not a fusion session",
                    ErrorContext{}.with_operation("serve_estimate")
                        .with_detail("id: " + id_));
  }
  BMF_SCOPED_TIMER_US("serve.estimate_us");
  return fusion_->snapshot();
}

std::size_t Session::observed_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return observed_total();
}

std::shared_ptr<Session> SessionRegistry::open(const std::string& id,
                                               const JsonValue& spec) {
  if (id.empty()) {
    throw DataError("session id must be non-empty",
                    ErrorContext{}.with_operation("serve_open"));
  }
  const bool is_fusion =
      spec.is_object() && spec.string_or("estimator", "") == "fusion";
  auto session = is_fusion
                     ? std::make_shared<Session>(id, make_fusion_estimator(spec))
                     : std::make_shared<Session>(id, make_estimator(spec));
  std::lock_guard<std::mutex> lock(mutex_);
  if (!sessions_.emplace(id, session).second) {
    throw DataError("session already open",
                    ErrorContext{}.with_operation("serve_open").with_detail(
                        "id: " + id));
  }
  update_gauges();
  return session;
}

std::shared_ptr<Session> SessionRegistry::get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw DataError("unknown session",
                    ErrorContext{}.with_operation("serve_lookup").with_detail(
                        "id: " + id));
  }
  return it->second;
}

void SessionRegistry::close(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw DataError("unknown session",
                    ErrorContext{}.with_operation("serve_close").with_detail(
                        "id: " + id));
  }
  sessions_.erase(it);
  update_gauges();
}

std::size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

void SessionRegistry::update_gauges() const {
#if BMFUSION_TELEMETRY_ENABLED
  std::size_t populations = 0;
  std::size_t fusion_sessions = 0;
  for (const auto& [id, session] : sessions_) {
    populations += session->population_count();
    fusion_sessions += session->is_fusion() ? 1 : 0;
  }
  BMF_GAUGE_SET("serve.sessions", sessions_.size());
  BMF_GAUGE_SET("serve.open_populations", populations);
  BMF_GAUGE_SET("serve.fusion_sessions", fusion_sessions);
#endif
}

std::vector<SessionSummary> SessionRegistry::summaries() const {
  std::vector<std::shared_ptr<Session>> open_sessions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    open_sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) {
      open_sessions.push_back(session);
    }
  }
  // Per-session calls take the session mutex, so they run outside the
  // registry lock (matching the lock order of the request handlers).
  std::vector<SessionSummary> out;
  out.reserve(open_sessions.size());
  for (const auto& session : open_sessions) {
    SessionSummary summary;
    summary.id = session->id();
    summary.estimator = session->estimator_name();
    summary.populations = session->population_count();
    summary.observed = session->observed_count();
    out.push_back(std::move(summary));
  }
  return out;
}

}  // namespace bmfusion::serve
