// bmf_serve transport: a JSON-lines TCP server plus a stdio loop.
//
// The server listens on a loopback TCP socket (port 0 = ephemeral, the
// bound port is queryable after start) and spawns one thread per accepted
// connection. Connection threads only frame lines and serialize responses;
// every request body runs through serve/protocol.hpp against the shared
// SessionRegistry, and the estimate hot path lands on the shared
// parallel_for pool. A "shutdown" request (or stop()) closes the listener,
// wakes every connection and joins all threads, so a server object always
// leaves scope with no thread or fd still alive — the property the ASan
// soak stage checks.
//
// run_stdio() drives the same protocol over an istream/ostream pair for
// environments without sockets (pipes, tests, one-shot batch use).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/session.hpp"

namespace bmfusion::serve {

struct ServerConfig {
  /// TCP port to bind on 127.0.0.1; 0 asks the kernel for an ephemeral
  /// port (read it back with Server::port()).
  std::uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 64;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});

  /// Joins every connection; equivalent to stop().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept thread. Throws DataError when the
  /// socket cannot be created or bound.
  void start();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

  /// Initiates shutdown: closes the listener and every live connection,
  /// then joins all threads. Idempotent.
  void stop();

  /// Blocks until a "shutdown" request (or stop() from another thread) has
  /// terminated the accept loop, then joins everything.
  void wait();

  /// Sessions live here; shared across connections and exposed for
  /// in-process tests.
  [[nodiscard]] SessionRegistry& sessions() { return sessions_; }

 private:
  void accept_loop();
  void serve_connection(int fd);
  void close_listener();

  ServerConfig config_;
  SessionRegistry sessions_;
  std::uint16_t bound_port_ = 0;
  int listen_fd_ = -1;
  std::thread accept_thread_;

  std::mutex mutex_;  ///< guards connections_ and stopping_
  std::vector<std::pair<int, std::thread>> connections_;
  bool stopping_ = false;
};

/// Runs the JSON-lines protocol over streams until EOF or a "shutdown"
/// request. Returns the number of requests handled.
std::size_t run_stdio(SessionRegistry& sessions, std::istream& in,
                      std::ostream& out);

}  // namespace bmfusion::serve
