// Minimal blocking JSON-lines client for the bmf_serve protocol.
//
// One loopback TCP connection, newline-delimited frames. This is the
// client half used by the soak driver, the serve bench, and the serve
// tests; production callers with their own event loop only need the
// protocol shape documented in protocol.hpp.
#pragma once

#include <cstdint>
#include <string>

namespace bmfusion::serve {

/// Blocking JSON-lines client on one loopback TCP connection. Not
/// thread-safe; use one instance per client thread.
class LineClient {
 public:
  LineClient() = default;
  ~LineClient();
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Connects to 127.0.0.1:`port` and disables Nagle (the protocol is
  /// small-frame request/response; Nagle + delayed ACK would add ~40ms
  /// per round trip). Returns false when the connection is refused.
  [[nodiscard]] bool connect_to(std::uint16_t port);

  /// Sends `line` plus the terminating newline in one send. Returns
  /// false when the peer went away.
  [[nodiscard]] bool send_line(const std::string& line);

  /// Receives the next newline-delimited frame (newline stripped).
  /// Returns false on EOF or error.
  [[nodiscard]] bool recv_line(std::string& line);

  /// send_line + recv_line in one call.
  [[nodiscard]] bool request(const std::string& line, std::string& response);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace bmfusion::serve
