// Minimal blocking client for the bmf_serve protocol: JSON lines by
// default, switchable to the length-prefixed binary framing.
//
// One loopback TCP connection. This is the client half used by the soak
// driver, the serve bench, and the serve tests; production callers with
// their own event loop only need the protocol shape documented in
// protocol.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bmfusion::serve {

/// One binary response frame, header already decoded.
struct Frame {
  std::uint8_t opcode = 0;
  std::uint16_t flags = 0;
  std::string payload;

  [[nodiscard]] bool ok() const;  ///< error flag clear
};

/// Blocking client on one loopback TCP connection. Not thread-safe; use
/// one instance per client thread.
class LineClient {
 public:
  LineClient() = default;
  ~LineClient();
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Connects to 127.0.0.1:`port` and disables Nagle (the protocol is
  /// small-frame request/response; Nagle + delayed ACK would add ~40ms
  /// per round trip). Returns false when the connection is refused.
  [[nodiscard]] bool connect_to(std::uint16_t port);

  /// Closes the connection (also done by the destructor).
  void close();

  /// Sends `line` plus the terminating newline in one send. Returns
  /// false when the peer went away.
  [[nodiscard]] bool send_line(const std::string& line);

  /// Receives the next newline-delimited frame (newline stripped).
  /// Returns false on EOF or error.
  [[nodiscard]] bool recv_line(std::string& line);

  /// send_line + recv_line in one call.
  [[nodiscard]] bool request(const std::string& line, std::string& response);

  // ------------------------------------------------------- binary framing

  /// Sends {"op":"hello","mode":"binary"} and checks the acknowledgement.
  /// After it returns true, use the frame calls below exclusively.
  [[nodiscard]] bool negotiate_binary();

  /// Sends one binary frame (header built here; `flags` are the request
  /// header flags, e.g. wire::kFlagPopulation). Returns false when the
  /// peer went away.
  [[nodiscard]] bool send_frame(std::uint8_t opcode, std::string_view payload,
                                std::uint16_t flags = 0);

  /// Sends pre-framed bytes verbatim — the pipelining path: concatenate
  /// frames with wire::append_frame, send once, then recv_frame repeatedly.
  [[nodiscard]] bool send_raw(std::string_view bytes);

  /// Receives the next binary frame. Returns false on EOF, error, or a
  /// corrupt header.
  [[nodiscard]] bool recv_frame(Frame& frame);

  /// send_frame + recv_frame in one call.
  [[nodiscard]] bool request_frame(std::uint8_t opcode,
                                   std::string_view payload, Frame& frame,
                                   std::uint16_t flags = 0);

 private:
  int fd_ = -1;
  std::string buffer_;
  std::size_t buffer_pos_ = 0;  ///< consumption cursor into buffer_

  [[nodiscard]] bool fill_buffer();  ///< one recv append; false on EOF
  void compact();
};

}  // namespace bmfusion::serve
