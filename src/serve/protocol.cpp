#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <string>

#include "common/contracts.hpp"
#include "common/json.hpp"
#include "core/estimator.hpp"
#include "linalg/matrix.hpp"
#include "stats/stat_wire.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/telemetry.hpp"

namespace bmfusion::serve {

using linalg::Matrix;
using linalg::Vector;

namespace {

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

/// 17 significant digits round-trip doubles exactly; non-finite values
/// (unselected hyper-parameters) have no JSON spelling and become null.
void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void append_vector(std::string& out, const Vector& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ',';
    append_double(out, v[i]);
  }
  out += ']';
}

void append_matrix(std::string& out, const Matrix& m) {
  out += '[';
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (r != 0) out += ',';
    out += '[';
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c != 0) out += ',';
      append_double(out, m(r, c));
    }
    out += ']';
  }
  out += ']';
}

/// {"ok":true,"op":<op>,"session":<id>  — caller appends members + "}".
std::string response_head(std::string_view op, std::string_view session) {
  std::string out = "{\"ok\":true,\"op\":\"";
  append_escaped(out, op);
  out += '"';
  if (!session.empty()) {
    out += ",\"session\":\"";
    append_escaped(out, session);
    out += '"';
  }
  return out;
}

std::string error_response(std::string_view type, std::string_view message) {
  std::string out = "{\"ok\":false,\"error\":{\"type\":\"";
  append_escaped(out, type);
  out += "\",\"message\":\"";
  append_escaped(out, message);
  out += "\"}}";
  return out;
}

std::string required_string(const JsonValue& request, const char* key) {
  const JsonValue* value = request.find(key);
  if (value == nullptr || !value->is_string()) {
    throw DataError(std::string("request needs a string \"") + key + "\"",
                    ErrorContext{}.with_operation("serve_protocol"));
  }
  return value->as_string();
}

const JsonValue& required_member(const JsonValue& request, const char* key) {
  const JsonValue* value = request.find(key);
  if (value == nullptr) {
    throw DataError(std::string("request needs \"") + key + "\"",
                    ErrorContext{}.with_operation("serve_protocol"));
  }
  return *value;
}

std::string handle_open(SessionRegistry& registry, const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const std::shared_ptr<Session> session = registry.open(id, request);
  BMF_COUNTER_ADD("serve.op.open", 1);
  std::string out = response_head("open", id);
  out += ",\"estimator\":\"";
  append_escaped(out, session->estimator_name());
  out += "\"}";
  return out;
}

/// Optional "population" member: a stream index of a fusion session. JSON
/// numbers are doubles, so only exact nonnegative integers that fit the
/// binary framing's u32 are accepted.
std::size_t parse_population(const JsonValue& request) {
  const JsonValue* value = request.find("population");
  if (value == nullptr) return 0;
  constexpr double kMaxPopulation = 4294967295.0;  // u32 max
  const double raw = value->is_number() ? value->as_number() : -1.0;
  if (!value->is_number() || raw < 0.0 || std::floor(raw) != raw ||
      raw > kMaxPopulation) {
    throw DataError(
        "\"population\" must be a nonnegative integer no larger than 2^32-1",
        ErrorContext{}.with_operation("serve_protocol").with_detail(
            "field: population"));
  }
  return static_cast<std::size_t>(raw);
}

std::string handle_observe(SessionRegistry& registry,
                           const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const std::size_t population = parse_population(request);
  const Matrix samples =
      parse_matrix(required_member(request, "samples"), "samples");
  const std::size_t total = registry.get(id)->observe(samples, population);
  BMF_COUNTER_ADD("serve.op.observe", 1);
  BMF_COUNTER_ADD("serve.observed_samples", samples.rows());
  std::string out = response_head("observe", id);
  if (request.find("population") != nullptr) {
    out += ",\"population\":" + std::to_string(population);
  }
  out += ",\"observed\":" + std::to_string(samples.rows());
  out += ",\"total\":" + std::to_string(total) + "}";
  return out;
}

std::string handle_absorb(SessionRegistry& registry,
                          const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const stats::StatsShard shard =
      stats::shard_from_json(required_member(request, "shard"));
  const std::shared_ptr<Session> session = registry.get(id);
  const bool absorbed = session->absorb(shard);
  BMF_COUNTER_ADD("serve.op.absorb", 1);
  std::string out = response_head("absorb", id);
  out += absorbed ? ",\"duplicate\":false" : ",\"duplicate\":true";
  out += ",\"total\":" + std::to_string(session->observed_count()) + "}";
  return out;
}

/// JSON numbers are doubles, so a shard id survives the trip only while it
/// is an exactly-representable integer: non-integral values and anything
/// above 2^53 would be silently mangled by the cast. Reject both.
std::uint64_t parse_shard_id(const JsonValue& value) {
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  const double raw = value.is_number() ? value.as_number() : -1.0;
  if (!value.is_number() || raw < 0.0 || std::floor(raw) != raw ||
      raw > kMaxExact) {
    throw DataError(
        "\"shard_id\" must be a nonnegative integer no larger than 2^53",
        ErrorContext{}.with_operation("serve_protocol").with_detail(
            "field: shard_id"));
  }
  return static_cast<std::uint64_t>(raw);
}

std::string handle_stats(SessionRegistry& registry, const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const std::size_t population = parse_population(request);
  std::uint64_t shard_id = 0;
  if (const JsonValue* v = request.find("shard_id")) {
    shard_id = parse_shard_id(*v);
  }
  const stats::StatsShard shard =
      registry.get(id)->export_shard(shard_id, population);
  BMF_COUNTER_ADD("serve.op.stats", 1);
  std::string out = response_head("stats", id);
  out += ",\"shard\":" + stats::shard_to_json(shard) + "}";
  return out;
}

/// {"mean":[..],"covariance":[[..]],"kappa0":..,"nu0":..,"score":..}
void append_estimate(std::string& out, const core::EstimateResult& result) {
  out += "{\"mean\":";
  append_vector(out, result.moments.mean);
  out += ",\"covariance\":";
  append_matrix(out, result.moments.covariance);
  out += ",\"kappa0\":";
  append_double(out, result.kappa0);
  out += ",\"nu0\":";
  append_double(out, result.nu0);
  out += ",\"score\":";
  append_double(out, result.score);
  out += '}';
}

/// Joint fusion response: one entry per population with the fused estimate
/// (headline), the independent posterior when the population has its own
/// usable samples, and the borrowing diagnostics.
std::string fusion_estimate_response(const std::string& id,
                                     const Session& session) {
  const fusion::FusionSnapshot snapshot = session.estimate_fusion();
  std::string out = response_head("estimate", id);
  out += ",\"count\":" + std::to_string(session.observed_count());
  out += ",\"observed_populations\":" +
         std::to_string(snapshot.observed_populations);
  out += ",\"signal_variance\":";
  append_double(out, snapshot.signal_variance);
  out += ",\"correlation\":";
  append_matrix(out, snapshot.correlation);
  out += ",\"populations\":[";
  for (std::size_t p = 0; p < snapshot.populations.size(); ++p) {
    const fusion::PopulationEstimate& pop = snapshot.populations[p];
    if (p != 0) out += ',';
    out += "{\"population\":" + std::to_string(p);
    out += ",\"name\":\"";
    append_escaped(out, pop.name);
    out += "\",\"observed\":" + std::to_string(pop.observed);
    out += ",\"borrowed_kappa\":";
    append_double(out, pop.borrowed_kappa);
    out += ",\"anchor_shift\":";
    append_double(out, pop.anchor_shift);
    if (!pop.error.empty()) {
      out += ",\"error\":\"";
      append_escaped(out, pop.error);
      out += '"';
    }
    out += ",\"fused\":";
    append_estimate(out, pop.fused);
    if (pop.observed > 0 && pop.error.empty()) {
      out += ",\"independent\":";
      append_estimate(out, pop.independent);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string handle_estimate(SessionRegistry& registry,
                            const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const std::shared_ptr<Session> session = registry.get(id);
  BMF_COUNTER_ADD("serve.op.estimate", 1);
  if (session->is_fusion()) return fusion_estimate_response(id, *session);
  const core::EstimateResult result = session->estimate();
  std::string out = response_head("estimate", id);
  out += ",\"count\":" + std::to_string(session->observed_count());
  out += ",\"estimate\":";
  append_estimate(out, result);
  out += '}';
  return out;
}

std::string handle_close(SessionRegistry& registry, const JsonValue& request) {
  const std::string id = required_string(request, "session");
  registry.close(id);
  BMF_COUNTER_ADD("serve.op.close", 1);
  return response_head("close", id) + "}";
}

std::string handle_hello(const JsonValue& request, bool& switch_to_binary) {
  const std::string mode = request.string_or("mode", "json");
  if (mode != "json" && mode != "binary") {
    throw DataError("\"mode\" must be \"json\" or \"binary\"",
                    ErrorContext{}.with_operation("serve_protocol"));
  }
  switch_to_binary = mode == "binary";
  std::string out = response_head("hello", "");
  out += ",\"mode\":\"" + mode + "\"}";
  return out;
}

std::string dispatch(SessionRegistry& registry, std::string_view line,
                     bool& shutdown, bool& switch_to_binary) {
  const JsonValue request = parse_json(line);
  if (!request.is_object()) {
    throw DataError("request must be a JSON object",
                    ErrorContext{}.with_operation("serve_protocol"));
  }
  const std::string op = required_string(request, "op");
  if (op == "ping") return response_head("ping", "") + "}";
  if (op == "hello") return handle_hello(request, switch_to_binary);
  if (op == "open") return handle_open(registry, request);
  if (op == "observe") return handle_observe(registry, request);
  if (op == "absorb") return handle_absorb(registry, request);
  if (op == "stats") return handle_stats(registry, request);
  if (op == "estimate") return handle_estimate(registry, request);
  if (op == "close") return handle_close(registry, request);
  if (op == "shutdown") {
    shutdown = true;
    return response_head("shutdown", "") + "}";
  }
  throw DataError("unknown op \"" + op + "\"",
                  ErrorContext{}.with_operation("serve_protocol"));
}

}  // namespace

ProtocolResult handle_request(SessionRegistry& registry,
                              std::string_view line) {
  const std::uint64_t start_ns = telemetry::now_ns();
  BMF_COUNTER_ADD("serve.requests", 1);
  ProtocolResult result;
  try {
    result.response =
        dispatch(registry, line, result.shutdown, result.switch_to_binary);
  } catch (const DataError& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    result.response = error_response("DataError", e.what());
  } catch (const ConfigError& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    result.response = error_response("ConfigError", e.what());
  } catch (const NumericError& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    result.response = error_response("NumericError", e.what());
  } catch (const ContractError& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    result.response = error_response("ContractError", e.what());
  } catch (const std::exception& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    result.response = error_response("InternalError", e.what());
  }
  BMF_HISTOGRAM_RECORD_US(
      "serve.request_us",
      static_cast<double>(telemetry::now_ns() - start_ns) * 1e-3);
  return result;
}

namespace {

/// Cursor over a binary request payload; all reads throw DataError with a
/// byte offset on truncation, so malformed frames answer in-band like
/// malformed JSON does.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  std::uint16_t read_u16() { return read_scalar<std::uint16_t>(); }
  std::uint32_t read_u32() { return read_scalar<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_scalar<std::uint64_t>(); }

  std::string_view read_string() {
    const std::uint16_t size = read_u16();
    return read_bytes(size);
  }

  std::string_view read_bytes(std::size_t size) {
    if (data_.size() - pos_ < size) fail("truncated");
    const std::string_view out = data_.substr(pos_, size);
    pos_ += size;
    return out;
  }

  /// Everything not consumed yet (shard bytes trail the fixed fields).
  std::string_view rest() {
    const std::string_view out = data_.substr(pos_);
    pos_ = data_.size();
    return out;
  }

  void expect_consumed() const {
    if (pos_ != data_.size()) fail("trailing bytes");
  }

 private:
  template <typename T>
  T read_scalar() {
    if (data_.size() - pos_ < sizeof(T)) fail("truncated");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  [[noreturn]] void fail(const char* what) const {
    throw DataError(
        std::string("malformed binary request payload (") + what + ")",
        ErrorContext{}
            .with_operation("serve_binary")
            .with_index(pos_));
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

std::string binary_observe(SessionRegistry& registry, std::uint16_t flags,
                           std::string_view payload) {
  PayloadReader reader(payload);
  const std::string id(reader.read_string());
  const std::size_t population =
      (flags & wire::kFlagPopulation) != 0 ? reader.read_u32() : 0;
  const std::uint32_t rows = reader.read_u32();
  const std::uint32_t cols = reader.read_u32();
  if (rows == 0 || cols == 0) {
    throw DataError("observe frame needs rows > 0 and cols > 0",
                    ErrorContext{}.with_operation("serve_binary"));
  }
  const std::string_view cells =
      reader.read_bytes(static_cast<std::size_t>(rows) * cols *
                        sizeof(double));
  reader.expect_consumed();
  Matrix samples(rows, cols);
  std::memcpy(samples.data(), cells.data(), cells.size());
  const std::size_t total = registry.get(id)->observe(samples, population);
  BMF_COUNTER_ADD("serve.op.observe", 1);
  BMF_COUNTER_ADD("serve.observed_samples", rows);
  std::string out;
  wire::append_u32(out, rows);
  wire::append_u64(out, total);
  return out;
}

std::string binary_absorb(SessionRegistry& registry,
                          std::string_view payload) {
  PayloadReader reader(payload);
  const std::string id(reader.read_string());
  const stats::StatsShard shard = stats::parse_shard(reader.rest());
  const std::shared_ptr<Session> session = registry.get(id);
  const bool absorbed = session->absorb(shard);
  BMF_COUNTER_ADD("serve.op.absorb", 1);
  std::string out;
  out += static_cast<char>(absorbed ? 0 : 1);  // duplicate marker
  wire::append_u64(out, session->observed_count());
  return out;
}

std::string binary_stats(SessionRegistry& registry, std::uint16_t flags,
                         std::string_view payload) {
  PayloadReader reader(payload);
  const std::string id(reader.read_string());
  const std::size_t population =
      (flags & wire::kFlagPopulation) != 0 ? reader.read_u32() : 0;
  const std::uint64_t shard_id = reader.read_u64();
  reader.expect_consumed();
  const stats::StatsShard shard =
      registry.get(id)->export_shard(shard_id, population);
  BMF_COUNTER_ADD("serve.op.stats", 1);
  return stats::serialize_shard(shard);
}

std::string binary_error_payload(std::string_view type,
                                 std::string_view message) {
  std::string out;
  wire::append_string(out, type);
  out.append(message);
  return out;
}

}  // namespace

BinaryResult handle_binary_request(SessionRegistry& registry,
                                   std::uint8_t opcode, std::uint16_t req_flags,
                                   std::string_view payload) {
  BinaryResult result;
  // The kJson escape hatch routes through handle_request, which does its
  // own counting/timing; only native binary ops are accounted for here.
  if (opcode == wire::kJson) {
    const ProtocolResult json = handle_request(registry, payload);
    result.shutdown = json.shutdown;
    wire::append_frame(result.response, opcode, 0, json.response);
    return result;
  }
  const std::uint64_t start_ns = telemetry::now_ns();
  BMF_COUNTER_ADD("serve.requests", 1);
  std::string body;
  std::uint16_t flags = 0;
  try {
    switch (opcode) {
      case wire::kObserve:
        body = binary_observe(registry, req_flags, payload);
        break;
      case wire::kAbsorb: body = binary_absorb(registry, payload); break;
      case wire::kStats:
        body = binary_stats(registry, req_flags, payload);
        break;
      case wire::kPing: break;
      default:
        throw DataError(
            "unknown binary opcode " + std::to_string(opcode),
            ErrorContext{}.with_operation("serve_binary"));
    }
  } catch (const DataError& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    flags = wire::kFlagError;
    body = binary_error_payload("DataError", e.what());
  } catch (const ConfigError& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    flags = wire::kFlagError;
    body = binary_error_payload("ConfigError", e.what());
  } catch (const NumericError& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    flags = wire::kFlagError;
    body = binary_error_payload("NumericError", e.what());
  } catch (const ContractError& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    flags = wire::kFlagError;
    body = binary_error_payload("ContractError", e.what());
  } catch (const std::exception& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    flags = wire::kFlagError;
    body = binary_error_payload("InternalError", e.what());
  }
  wire::append_frame(result.response, opcode, flags, body);
  BMF_HISTOGRAM_RECORD_US(
      "serve.request_us",
      static_cast<double>(telemetry::now_ns() - start_ns) * 1e-3);
  return result;
}

}  // namespace bmfusion::serve
