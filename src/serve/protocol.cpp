#include "serve/protocol.hpp"

#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>

#include "common/contracts.hpp"
#include "common/json.hpp"
#include "core/estimator.hpp"
#include "linalg/matrix.hpp"
#include "log/log.hpp"
#include "stats/stat_wire.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace bmfusion::serve {

using linalg::Matrix;
using linalg::Vector;

namespace {

std::atomic<std::uint64_t> g_request_ids{0};
std::atomic<std::uint64_t> g_slow_threshold_ns{0};

}  // namespace

std::uint64_t process_start_ns() {
  static const std::uint64_t start = telemetry::now_ns();
  return start;
}

double process_uptime_s() {
  return static_cast<double>(telemetry::now_ns() - process_start_ns()) * 1e-9;
}

std::uint64_t next_request_id() {
  return g_request_ids.fetch_add(1, std::memory_order_relaxed) + 1;
}

void set_slow_request_threshold_us(double us) {
  g_slow_threshold_ns.store(
      us > 0.0 ? static_cast<std::uint64_t>(us * 1e3) : 0u,
      std::memory_order_relaxed);
}

double slow_request_threshold_us() {
  return static_cast<double>(
             g_slow_threshold_ns.load(std::memory_order_relaxed)) *
         1e-3;
}

namespace {

/// Known ops, indexing the per-op metric table. kUnknown also covers
/// requests that fail before an op string was parsed.
enum class OpId : std::size_t {
  kPing = 0,
  kHello,
  kOpen,
  kObserve,
  kAbsorb,
  kStats,
  kEstimate,
  kClose,
  kShutdown,
  kMetrics,
  kUnknown,
  kCount,
};

constexpr const char* kOpNames[] = {
    "ping",  "hello",    "open",    "observe", "absorb", "stats",
    "estimate", "close", "shutdown", "metrics", "unknown",
};

const char* op_name(OpId id) { return kOpNames[static_cast<std::size_t>(id)]; }

#if BMFUSION_TELEMETRY_ENABLED
/// Per-op request counter + latency histogram. The BMF_* macros cache one
/// metric per call site, which cannot key on a runtime op — this table
/// resolves every per-op metric once (first call registers, allocating),
/// after which recording is lock- and allocation-free, preserving the
/// hot-path contract the alloc-contract test checks.
struct OpMetrics {
  telemetry::Counter& requests;
  telemetry::Histogram& latency_us;
};

const OpMetrics& op_metrics(OpId id) {
  auto& reg = telemetry::Registry::instance();
  static const std::array<OpMetrics, static_cast<std::size_t>(OpId::kCount)>
      table{{
          {reg.counter("serve.ping.requests"),
           reg.histogram("serve.ping.latency_us")},
          {reg.counter("serve.hello.requests"),
           reg.histogram("serve.hello.latency_us")},
          {reg.counter("serve.open.requests"),
           reg.histogram("serve.open.latency_us")},
          {reg.counter("serve.observe.requests"),
           reg.histogram("serve.observe.latency_us")},
          {reg.counter("serve.absorb.requests"),
           reg.histogram("serve.absorb.latency_us")},
          {reg.counter("serve.stats.requests"),
           reg.histogram("serve.stats.latency_us")},
          {reg.counter("serve.estimate.requests"),
           reg.histogram("serve.estimate.latency_us")},
          {reg.counter("serve.close.requests"),
           reg.histogram("serve.close.latency_us")},
          {reg.counter("serve.shutdown.requests"),
           reg.histogram("serve.shutdown.latency_us")},
          {reg.counter("serve.metrics.requests"),
           reg.histogram("serve.metrics.latency_us")},
          {reg.counter("serve.unknown.requests"),
           reg.histogram("serve.unknown.latency_us")},
      }};
  return table[static_cast<std::size_t>(id)];
}
#endif

void record_op(OpId id, std::uint64_t elapsed_ns) {
#if BMFUSION_TELEMETRY_ENABLED
  const OpMetrics& m = op_metrics(id);
  m.requests.add(1);
  m.latency_us.record(static_cast<double>(elapsed_ns) * 1e-3);
#else
  (void)id;
  (void)elapsed_ns;
#endif
}

/// Per-class error counters beside the aggregate serve.errors.
enum class ErrorClass { kData, kConfig, kNumeric, kContract, kInternal };

void record_error(ErrorClass cls) {
  BMF_COUNTER_ADD("serve.errors", 1);
  switch (cls) {
    case ErrorClass::kData: BMF_COUNTER_ADD("serve.errors.data", 1); break;
    case ErrorClass::kConfig:
      BMF_COUNTER_ADD("serve.errors.config", 1);
      break;
    case ErrorClass::kNumeric:
      BMF_COUNTER_ADD("serve.errors.numeric", 1);
      break;
    case ErrorClass::kContract:
      BMF_COUNTER_ADD("serve.errors.contract", 1);
      break;
    case ErrorClass::kInternal:
      BMF_COUNTER_ADD("serve.errors.internal", 1);
      break;
  }
}

/// Off the hot path by construction: only entered once a request already
/// blew the slow threshold, so the structured log record and counter are
/// free to allocate.
void note_slow_request(OpId op, const std::string& session,
                       std::uint64_t request_id, std::uint64_t elapsed_ns,
                       std::size_t bytes) {
  BMF_COUNTER_ADD("serve.slow_requests", 1);
  BMF_LOG_WARN("slow serve request", log::f("op", op_name(op)),
               log::f("session", session), log::f("request_id", request_id),
               log::f("latency_us", static_cast<double>(elapsed_ns) * 1e-3),
               log::f("bytes", bytes));
}

[[nodiscard]] bool past_slow_threshold(std::uint64_t elapsed_ns) {
  const std::uint64_t slow_ns =
      g_slow_threshold_ns.load(std::memory_order_relaxed);
  return slow_ns != 0 && elapsed_ns >= slow_ns;
}

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

/// 17 significant digits round-trip doubles exactly; non-finite values
/// (unselected hyper-parameters) have no JSON spelling and become null.
void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void append_vector(std::string& out, const Vector& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ',';
    append_double(out, v[i]);
  }
  out += ']';
}

void append_matrix(std::string& out, const Matrix& m) {
  out += '[';
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (r != 0) out += ',';
    out += '[';
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c != 0) out += ',';
      append_double(out, m(r, c));
    }
    out += ']';
  }
  out += ']';
}

/// {"ok":true,"op":<op>,"session":<id>  — caller appends members + "}".
std::string response_head(std::string_view op, std::string_view session) {
  std::string out = "{\"ok\":true,\"op\":\"";
  append_escaped(out, op);
  out += '"';
  if (!session.empty()) {
    out += ",\"session\":\"";
    append_escaped(out, session);
    out += '"';
  }
  return out;
}

std::string error_response(std::string_view type, std::string_view message) {
  std::string out = "{\"ok\":false,\"error\":{\"type\":\"";
  append_escaped(out, type);
  out += "\",\"message\":\"";
  append_escaped(out, message);
  out += "\"}}";
  return out;
}

std::string required_string(const JsonValue& request, const char* key) {
  const JsonValue* value = request.find(key);
  if (value == nullptr || !value->is_string()) {
    throw DataError(std::string("request needs a string \"") + key + "\"",
                    ErrorContext{}.with_operation("serve_protocol"));
  }
  return value->as_string();
}

const JsonValue& required_member(const JsonValue& request, const char* key) {
  const JsonValue* value = request.find(key);
  if (value == nullptr) {
    throw DataError(std::string("request needs \"") + key + "\"",
                    ErrorContext{}.with_operation("serve_protocol"));
  }
  return *value;
}

std::string handle_open(SessionRegistry& registry, const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const std::shared_ptr<Session> session = registry.open(id, request);
  std::string out = response_head("open", id);
  out += ",\"estimator\":\"";
  append_escaped(out, session->estimator_name());
  out += "\"}";
  return out;
}

/// Optional "population" member: a stream index of a fusion session. JSON
/// numbers are doubles, so only exact nonnegative integers that fit the
/// binary framing's u32 are accepted.
std::size_t parse_population(const JsonValue& request) {
  const JsonValue* value = request.find("population");
  if (value == nullptr) return 0;
  constexpr double kMaxPopulation = 4294967295.0;  // u32 max
  const double raw = value->is_number() ? value->as_number() : -1.0;
  if (!value->is_number() || raw < 0.0 || std::floor(raw) != raw ||
      raw > kMaxPopulation) {
    throw DataError(
        "\"population\" must be a nonnegative integer no larger than 2^32-1",
        ErrorContext{}.with_operation("serve_protocol").with_detail(
            "field: population"));
  }
  return static_cast<std::size_t>(raw);
}

std::string handle_observe(SessionRegistry& registry,
                           const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const std::size_t population = parse_population(request);
  const Matrix samples =
      parse_matrix(required_member(request, "samples"), "samples");
  const std::size_t total = registry.get(id)->observe(samples, population);
  BMF_COUNTER_ADD("serve.observed_samples", samples.rows());
  std::string out = response_head("observe", id);
  if (request.find("population") != nullptr) {
    out += ",\"population\":" + std::to_string(population);
  }
  out += ",\"observed\":" + std::to_string(samples.rows());
  out += ",\"total\":" + std::to_string(total) + "}";
  return out;
}

std::string handle_absorb(SessionRegistry& registry,
                          const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const stats::StatsShard shard =
      stats::shard_from_json(required_member(request, "shard"));
  const std::shared_ptr<Session> session = registry.get(id);
  const bool absorbed = session->absorb(shard);
  std::string out = response_head("absorb", id);
  out += absorbed ? ",\"duplicate\":false" : ",\"duplicate\":true";
  out += ",\"total\":" + std::to_string(session->observed_count()) + "}";
  return out;
}

/// JSON numbers are doubles, so a shard id survives the trip only while it
/// is an exactly-representable integer: non-integral values and anything
/// above 2^53 would be silently mangled by the cast. Reject both.
std::uint64_t parse_shard_id(const JsonValue& value) {
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  const double raw = value.is_number() ? value.as_number() : -1.0;
  if (!value.is_number() || raw < 0.0 || std::floor(raw) != raw ||
      raw > kMaxExact) {
    throw DataError(
        "\"shard_id\" must be a nonnegative integer no larger than 2^53",
        ErrorContext{}.with_operation("serve_protocol").with_detail(
            "field: shard_id"));
  }
  return static_cast<std::uint64_t>(raw);
}

std::string handle_stats(SessionRegistry& registry, const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const std::size_t population = parse_population(request);
  std::uint64_t shard_id = 0;
  if (const JsonValue* v = request.find("shard_id")) {
    shard_id = parse_shard_id(*v);
  }
  const stats::StatsShard shard =
      registry.get(id)->export_shard(shard_id, population);
  std::string out = response_head("stats", id);
  out += ",\"shard\":" + stats::shard_to_json(shard) + "}";
  return out;
}

/// {"mean":[..],"covariance":[[..]],"kappa0":..,"nu0":..,"score":..}
void append_estimate(std::string& out, const core::EstimateResult& result) {
  out += "{\"mean\":";
  append_vector(out, result.moments.mean);
  out += ",\"covariance\":";
  append_matrix(out, result.moments.covariance);
  out += ",\"kappa0\":";
  append_double(out, result.kappa0);
  out += ",\"nu0\":";
  append_double(out, result.nu0);
  out += ",\"score\":";
  append_double(out, result.score);
  out += '}';
}

/// Joint fusion response: one entry per population with the fused estimate
/// (headline), the independent posterior when the population has its own
/// usable samples, and the borrowing diagnostics.
std::string fusion_estimate_response(const std::string& id,
                                     const Session& session) {
  const fusion::FusionSnapshot snapshot = session.estimate_fusion();
  std::string out = response_head("estimate", id);
  out += ",\"count\":" + std::to_string(session.observed_count());
  out += ",\"observed_populations\":" +
         std::to_string(snapshot.observed_populations);
  out += ",\"signal_variance\":";
  append_double(out, snapshot.signal_variance);
  out += ",\"correlation\":";
  append_matrix(out, snapshot.correlation);
  out += ",\"populations\":[";
  for (std::size_t p = 0; p < snapshot.populations.size(); ++p) {
    const fusion::PopulationEstimate& pop = snapshot.populations[p];
    if (p != 0) out += ',';
    out += "{\"population\":" + std::to_string(p);
    out += ",\"name\":\"";
    append_escaped(out, pop.name);
    out += "\",\"observed\":" + std::to_string(pop.observed);
    out += ",\"borrowed_kappa\":";
    append_double(out, pop.borrowed_kappa);
    out += ",\"anchor_shift\":";
    append_double(out, pop.anchor_shift);
    if (!pop.error.empty()) {
      out += ",\"error\":\"";
      append_escaped(out, pop.error);
      out += '"';
    }
    out += ",\"fused\":";
    append_estimate(out, pop.fused);
    if (pop.observed > 0 && pop.error.empty()) {
      out += ",\"independent\":";
      append_estimate(out, pop.independent);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string handle_estimate(SessionRegistry& registry,
                            const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const std::shared_ptr<Session> session = registry.get(id);
  if (session->is_fusion()) return fusion_estimate_response(id, *session);
  const core::EstimateResult result = session->estimate();
  std::string out = response_head("estimate", id);
  out += ",\"count\":" + std::to_string(session->observed_count());
  out += ",\"estimate\":";
  append_estimate(out, result);
  out += '}';
  return out;
}

std::string handle_close(SessionRegistry& registry, const JsonValue& request) {
  const std::string id = required_string(request, "session");
  registry.close(id);
  return response_head("close", id) + "}";
}

/// ,"server_version":"..","wire_version":N,"uptime_s":X — the compatibility
/// triple ping/hello answer and /statusz echoes.
void append_version_fields(std::string& out) {
  out += ",\"server_version\":\"";
  append_escaped(out, kServerVersion);
  out += "\",\"wire_version\":";
  out += std::to_string(kWireVersion);
  out += ",\"uptime_s\":";
  append_double(out, process_uptime_s());
}

std::string handle_ping(std::uint64_t request_id) {
  std::string out = response_head("ping", "");
  out += ",\"request_id\":" + std::to_string(request_id);
  append_version_fields(out);
  out += '}';
  return out;
}

std::string handle_metrics(std::uint64_t request_id) {
  std::string out = response_head("metrics", "");
  out += ",\"request_id\":" + std::to_string(request_id);
  append_version_fields(out);
  out += ",\"telemetry\":";
  out += telemetry::json_snapshot_compact();
  out += '}';
  return out;
}

std::string handle_hello(const JsonValue& request, bool& switch_to_binary) {
  const std::string mode = request.string_or("mode", "json");
  if (mode != "json" && mode != "binary") {
    throw DataError("\"mode\" must be \"json\" or \"binary\"",
                    ErrorContext{}.with_operation("serve_protocol"));
  }
  switch_to_binary = mode == "binary";
  std::string out = response_head("hello", "");
  out += ",\"mode\":\"" + mode + "\"";
  append_version_fields(out);
  out += '}';
  return out;
}

std::string dispatch(SessionRegistry& registry, const JsonValue& request,
                     ProtocolResult& result, OpId& op_id,
                     std::string& session) {
  if (!request.is_object()) {
    throw DataError("request must be a JSON object",
                    ErrorContext{}.with_operation("serve_protocol"));
  }
  const std::string op = required_string(request, "op");
  if (const JsonValue* s = request.find("session");
      s != nullptr && s->is_string()) {
    session = s->as_string();
  }
  if (op == "ping") {
    op_id = OpId::kPing;
    return handle_ping(result.request_id);
  }
  if (op == "hello") {
    op_id = OpId::kHello;
    return handle_hello(request, result.switch_to_binary);
  }
  if (op == "open") {
    op_id = OpId::kOpen;
    return handle_open(registry, request);
  }
  if (op == "observe") {
    op_id = OpId::kObserve;
    return handle_observe(registry, request);
  }
  if (op == "absorb") {
    op_id = OpId::kAbsorb;
    return handle_absorb(registry, request);
  }
  if (op == "stats") {
    op_id = OpId::kStats;
    return handle_stats(registry, request);
  }
  if (op == "estimate") {
    op_id = OpId::kEstimate;
    return handle_estimate(registry, request);
  }
  if (op == "close") {
    op_id = OpId::kClose;
    return handle_close(registry, request);
  }
  if (op == "metrics") {
    op_id = OpId::kMetrics;
    return handle_metrics(result.request_id);
  }
  if (op == "shutdown") {
    op_id = OpId::kShutdown;
    result.shutdown = true;
    return response_head("shutdown", "") + "}";
  }
  throw DataError("unknown op \"" + op + "\"",
                  ErrorContext{}.with_operation("serve_protocol"));
}

}  // namespace

ProtocolResult handle_request(SessionRegistry& registry,
                              std::string_view line) {
  const std::uint64_t start_ns = telemetry::now_ns();
  BMF_COUNTER_ADD("serve.requests", 1);
  ProtocolResult result;
  result.request_id = next_request_id();
  OpId op_id = OpId::kUnknown;
  std::string session;
  try {
    const JsonValue request = parse_json(line);
    BMF_HISTOGRAM_RECORD_US(
        "serve.decode_us",
        static_cast<double>(telemetry::now_ns() - start_ns) * 1e-3);
    result.response = dispatch(registry, request, result, op_id, session);
  } catch (const DataError& e) {
    record_error(ErrorClass::kData);
    result.response = error_response("DataError", e.what());
  } catch (const ConfigError& e) {
    record_error(ErrorClass::kConfig);
    result.response = error_response("ConfigError", e.what());
  } catch (const NumericError& e) {
    record_error(ErrorClass::kNumeric);
    result.response = error_response("NumericError", e.what());
  } catch (const ContractError& e) {
    record_error(ErrorClass::kContract);
    result.response = error_response("ContractError", e.what());
  } catch (const std::exception& e) {
    record_error(ErrorClass::kInternal);
    result.response = error_response("InternalError", e.what());
  }
  const std::uint64_t elapsed_ns = telemetry::now_ns() - start_ns;
  BMF_HISTOGRAM_RECORD_US("serve.request_us",
                          static_cast<double>(elapsed_ns) * 1e-3);
  record_op(op_id, elapsed_ns);
  if (past_slow_threshold(elapsed_ns)) {
    note_slow_request(op_id, session, result.request_id, elapsed_ns,
                      line.size());
  }
  return result;
}

namespace {

/// Cursor over a binary request payload; all reads throw DataError with a
/// byte offset on truncation, so malformed frames answer in-band like
/// malformed JSON does.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  std::uint16_t read_u16() { return read_scalar<std::uint16_t>(); }
  std::uint32_t read_u32() { return read_scalar<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_scalar<std::uint64_t>(); }

  std::string_view read_string() {
    const std::uint16_t size = read_u16();
    return read_bytes(size);
  }

  std::string_view read_bytes(std::size_t size) {
    if (data_.size() - pos_ < size) fail("truncated");
    const std::string_view out = data_.substr(pos_, size);
    pos_ += size;
    return out;
  }

  /// Everything not consumed yet (shard bytes trail the fixed fields).
  std::string_view rest() {
    const std::string_view out = data_.substr(pos_);
    pos_ = data_.size();
    return out;
  }

  void expect_consumed() const {
    if (pos_ != data_.size()) fail("trailing bytes");
  }

 private:
  template <typename T>
  T read_scalar() {
    if (data_.size() - pos_ < sizeof(T)) fail("truncated");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  [[noreturn]] void fail(const char* what) const {
    throw DataError(
        std::string("malformed binary request payload (") + what + ")",
        ErrorContext{}
            .with_operation("serve_binary")
            .with_index(pos_));
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

std::string binary_observe(SessionRegistry& registry, std::uint16_t flags,
                           std::string_view payload, std::string& session_id) {
  PayloadReader reader(payload);
  session_id.assign(reader.read_string());
  const std::size_t population =
      (flags & wire::kFlagPopulation) != 0 ? reader.read_u32() : 0;
  const std::uint32_t rows = reader.read_u32();
  const std::uint32_t cols = reader.read_u32();
  if (rows == 0 || cols == 0) {
    throw DataError("observe frame needs rows > 0 and cols > 0",
                    ErrorContext{}.with_operation("serve_binary"));
  }
  const std::string_view cells =
      reader.read_bytes(static_cast<std::size_t>(rows) * cols *
                        sizeof(double));
  reader.expect_consumed();
  Matrix samples(rows, cols);
  std::memcpy(samples.data(), cells.data(), cells.size());
  const std::size_t total =
      registry.get(session_id)->observe(samples, population);
  BMF_COUNTER_ADD("serve.observed_samples", rows);
  std::string out;
  wire::append_u32(out, rows);
  wire::append_u64(out, total);
  return out;
}

std::string binary_absorb(SessionRegistry& registry, std::string_view payload,
                          std::string& session_id) {
  PayloadReader reader(payload);
  session_id.assign(reader.read_string());
  const stats::StatsShard shard = stats::parse_shard(reader.rest());
  const std::shared_ptr<Session> session = registry.get(session_id);
  const bool absorbed = session->absorb(shard);
  std::string out;
  out += static_cast<char>(absorbed ? 0 : 1);  // duplicate marker
  wire::append_u64(out, session->observed_count());
  return out;
}

std::string binary_stats(SessionRegistry& registry, std::uint16_t flags,
                         std::string_view payload, std::string& session_id) {
  PayloadReader reader(payload);
  session_id.assign(reader.read_string());
  const std::size_t population =
      (flags & wire::kFlagPopulation) != 0 ? reader.read_u32() : 0;
  const std::uint64_t shard_id = reader.read_u64();
  reader.expect_consumed();
  const stats::StatsShard shard =
      registry.get(session_id)->export_shard(shard_id, population);
  return stats::serialize_shard(shard);
}

std::string binary_error_payload(std::string_view type,
                                 std::string_view message) {
  std::string out;
  wire::append_string(out, type);
  out.append(message);
  return out;
}

}  // namespace

BinaryResult handle_binary_request(SessionRegistry& registry,
                                   std::uint8_t opcode, std::uint16_t req_flags,
                                   std::string_view payload) {
  BinaryResult result;
  // The kJson escape hatch routes through handle_request, which does its
  // own counting/timing; only native binary ops are accounted for here.
  if (opcode == wire::kJson) {
    const ProtocolResult json = handle_request(registry, payload);
    result.shutdown = json.shutdown;
    result.request_id = json.request_id;
    wire::append_frame(result.response, opcode, 0, json.response);
    return result;
  }
  const std::uint64_t start_ns = telemetry::now_ns();
  BMF_COUNTER_ADD("serve.requests", 1);
  result.request_id = next_request_id();
  OpId op_id = OpId::kUnknown;
  switch (opcode) {
    case wire::kObserve: op_id = OpId::kObserve; break;
    case wire::kAbsorb: op_id = OpId::kAbsorb; break;
    case wire::kStats: op_id = OpId::kStats; break;
    case wire::kPing: op_id = OpId::kPing; break;
    default: break;
  }
  std::string body;
  std::string session;
  std::uint16_t flags = 0;
  try {
    switch (opcode) {
      case wire::kObserve:
        body = binary_observe(registry, req_flags, payload, session);
        break;
      case wire::kAbsorb:
        body = binary_absorb(registry, payload, session);
        break;
      case wire::kStats:
        body = binary_stats(registry, req_flags, payload, session);
        break;
      case wire::kPing: break;
      default:
        throw DataError(
            "unknown binary opcode " + std::to_string(opcode),
            ErrorContext{}.with_operation("serve_binary"));
    }
  } catch (const DataError& e) {
    record_error(ErrorClass::kData);
    flags = wire::kFlagError;
    body = binary_error_payload("DataError", e.what());
  } catch (const ConfigError& e) {
    record_error(ErrorClass::kConfig);
    flags = wire::kFlagError;
    body = binary_error_payload("ConfigError", e.what());
  } catch (const NumericError& e) {
    record_error(ErrorClass::kNumeric);
    flags = wire::kFlagError;
    body = binary_error_payload("NumericError", e.what());
  } catch (const ContractError& e) {
    record_error(ErrorClass::kContract);
    flags = wire::kFlagError;
    body = binary_error_payload("ContractError", e.what());
  } catch (const std::exception& e) {
    record_error(ErrorClass::kInternal);
    flags = wire::kFlagError;
    body = binary_error_payload("InternalError", e.what());
  }
  wire::append_frame(result.response, opcode, flags, body);
  // No serve.request_us record here: on the binary hot path the per-op
  // latency histogram (record_op) already carries the timing, and the
  // aggregate would be a second bucket scan per request. serve.request_us
  // stays JSON-transport-only (where it additionally covers decode).
  const std::uint64_t elapsed_ns = telemetry::now_ns() - start_ns;
  record_op(op_id, elapsed_ns);
  if (past_slow_threshold(elapsed_ns)) {
    note_slow_request(op_id, session, result.request_id, elapsed_ns,
                      payload.size());
  }
  return result;
}

}  // namespace bmfusion::serve
