#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <string>

#include "common/contracts.hpp"
#include "common/json.hpp"
#include "core/estimator.hpp"
#include "linalg/matrix.hpp"
#include "stats/stat_wire.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/telemetry.hpp"

namespace bmfusion::serve {

using linalg::Matrix;
using linalg::Vector;

namespace {

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

/// 17 significant digits round-trip doubles exactly; non-finite values
/// (unselected hyper-parameters) have no JSON spelling and become null.
void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void append_vector(std::string& out, const Vector& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ',';
    append_double(out, v[i]);
  }
  out += ']';
}

void append_matrix(std::string& out, const Matrix& m) {
  out += '[';
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (r != 0) out += ',';
    out += '[';
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c != 0) out += ',';
      append_double(out, m(r, c));
    }
    out += ']';
  }
  out += ']';
}

/// {"ok":true,"op":<op>,"session":<id>  — caller appends members + "}".
std::string response_head(std::string_view op, std::string_view session) {
  std::string out = "{\"ok\":true,\"op\":\"";
  append_escaped(out, op);
  out += '"';
  if (!session.empty()) {
    out += ",\"session\":\"";
    append_escaped(out, session);
    out += '"';
  }
  return out;
}

std::string error_response(std::string_view type, std::string_view message) {
  std::string out = "{\"ok\":false,\"error\":{\"type\":\"";
  append_escaped(out, type);
  out += "\",\"message\":\"";
  append_escaped(out, message);
  out += "\"}}";
  return out;
}

std::string required_string(const JsonValue& request, const char* key) {
  const JsonValue* value = request.find(key);
  if (value == nullptr || !value->is_string()) {
    throw DataError(std::string("request needs a string \"") + key + "\"",
                    ErrorContext{}.with_operation("serve_protocol"));
  }
  return value->as_string();
}

const JsonValue& required_member(const JsonValue& request, const char* key) {
  const JsonValue* value = request.find(key);
  if (value == nullptr) {
    throw DataError(std::string("request needs \"") + key + "\"",
                    ErrorContext{}.with_operation("serve_protocol"));
  }
  return *value;
}

std::string handle_open(SessionRegistry& registry, const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const std::shared_ptr<Session> session = registry.open(id, request);
  BMF_COUNTER_ADD("serve.op.open", 1);
  std::string out = response_head("open", id);
  out += ",\"estimator\":\"";
  append_escaped(out, session->estimator_name());
  out += "\"}";
  return out;
}

std::string handle_observe(SessionRegistry& registry,
                           const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const Matrix samples =
      parse_matrix(required_member(request, "samples"), "samples");
  const std::size_t total = registry.get(id)->observe(samples);
  BMF_COUNTER_ADD("serve.op.observe", 1);
  BMF_COUNTER_ADD("serve.observed_samples", samples.rows());
  std::string out = response_head("observe", id);
  out += ",\"observed\":" + std::to_string(samples.rows());
  out += ",\"total\":" + std::to_string(total) + "}";
  return out;
}

std::string handle_absorb(SessionRegistry& registry,
                          const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const stats::StatsShard shard =
      stats::shard_from_json(required_member(request, "shard"));
  const std::shared_ptr<Session> session = registry.get(id);
  const bool absorbed = session->absorb(shard);
  BMF_COUNTER_ADD("serve.op.absorb", 1);
  std::string out = response_head("absorb", id);
  out += absorbed ? ",\"duplicate\":false" : ",\"duplicate\":true";
  out += ",\"total\":" + std::to_string(session->observed_count()) + "}";
  return out;
}

std::string handle_stats(SessionRegistry& registry, const JsonValue& request) {
  const std::string id = required_string(request, "session");
  std::uint64_t shard_id = 0;
  if (const JsonValue* v = request.find("shard_id")) {
    if (!v->is_number() || v->as_number() < 0.0) {
      throw DataError("\"shard_id\" must be a nonnegative number",
                      ErrorContext{}.with_operation("serve_protocol"));
    }
    shard_id = static_cast<std::uint64_t>(v->as_number());
  }
  const stats::StatsShard shard = registry.get(id)->export_shard(shard_id);
  BMF_COUNTER_ADD("serve.op.stats", 1);
  std::string out = response_head("stats", id);
  out += ",\"shard\":" + stats::shard_to_json(shard) + "}";
  return out;
}

std::string handle_estimate(SessionRegistry& registry,
                            const JsonValue& request) {
  const std::string id = required_string(request, "session");
  const std::shared_ptr<Session> session = registry.get(id);
  const core::EstimateResult result = session->estimate();
  BMF_COUNTER_ADD("serve.op.estimate", 1);
  std::string out = response_head("estimate", id);
  out += ",\"count\":" + std::to_string(session->observed_count());
  out += ",\"estimate\":{\"mean\":";
  append_vector(out, result.moments.mean);
  out += ",\"covariance\":";
  append_matrix(out, result.moments.covariance);
  out += ",\"kappa0\":";
  append_double(out, result.kappa0);
  out += ",\"nu0\":";
  append_double(out, result.nu0);
  out += ",\"score\":";
  append_double(out, result.score);
  out += "}}";
  return out;
}

std::string handle_close(SessionRegistry& registry, const JsonValue& request) {
  const std::string id = required_string(request, "session");
  registry.close(id);
  BMF_COUNTER_ADD("serve.op.close", 1);
  return response_head("close", id) + "}";
}

std::string dispatch(SessionRegistry& registry, std::string_view line,
                     bool& shutdown) {
  const JsonValue request = parse_json(line);
  if (!request.is_object()) {
    throw DataError("request must be a JSON object",
                    ErrorContext{}.with_operation("serve_protocol"));
  }
  const std::string op = required_string(request, "op");
  if (op == "ping") return response_head("ping", "") + "}";
  if (op == "open") return handle_open(registry, request);
  if (op == "observe") return handle_observe(registry, request);
  if (op == "absorb") return handle_absorb(registry, request);
  if (op == "stats") return handle_stats(registry, request);
  if (op == "estimate") return handle_estimate(registry, request);
  if (op == "close") return handle_close(registry, request);
  if (op == "shutdown") {
    shutdown = true;
    return response_head("shutdown", "") + "}";
  }
  throw DataError("unknown op \"" + op + "\"",
                  ErrorContext{}.with_operation("serve_protocol"));
}

}  // namespace

ProtocolResult handle_request(SessionRegistry& registry,
                              std::string_view line) {
  const std::uint64_t start_ns = telemetry::now_ns();
  BMF_COUNTER_ADD("serve.requests", 1);
  ProtocolResult result;
  try {
    result.response = dispatch(registry, line, result.shutdown);
  } catch (const DataError& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    result.response = error_response("DataError", e.what());
  } catch (const ConfigError& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    result.response = error_response("ConfigError", e.what());
  } catch (const NumericError& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    result.response = error_response("NumericError", e.what());
  } catch (const ContractError& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    result.response = error_response("ContractError", e.what());
  } catch (const std::exception& e) {
    BMF_COUNTER_ADD("serve.errors", 1);
    result.response = error_response("InternalError", e.what());
  }
  BMF_HISTOGRAM_RECORD_US(
      "serve.request_us",
      static_cast<double>(telemetry::now_ns() - start_ns) * 1e-3);
  return result;
}

}  // namespace bmfusion::serve
