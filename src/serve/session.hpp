// Serve-layer sessions: one live streaming estimator per session id.
//
// A Session owns a MomentEstimator built from the JSON spec of an "open"
// request and serializes all access to it behind a mutex, so concurrent
// connections can observe into and estimate from the same session safely.
// Absorbed wire shards are cached by shard id per session, making shard
// delivery idempotent: a producer that retries an absorb after a dropped
// response cannot double-count its statistics.
//
// SessionRegistry is the process-wide id -> session map shared by every
// connection of a server (and by the stdio loop). Lookups hand out
// shared_ptrs so a session stays valid for an in-flight request even if
// another connection closes it concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "core/estimator.hpp"
#include "fusion/multi_population.hpp"
#include "linalg/matrix.hpp"
#include "stats/stat_wire.hpp"

namespace bmfusion::serve {

/// Builds an estimator from the JSON spec carried by an "open" request:
///
///   {"estimator": "mle" | "bmf" | "univariate-bmf",
///    "early":    {"mean": [...], "covariance": [[...]], "nominal": [...]},
///    "config":   {"folds": 4, "kappa_points": 12, "nu_points": 12,
///                 "kappa_min": .., "kappa_max": .., "nu_offset_min": ..,
///                 "nu_offset_max": .., "threads": 0,
///                 "shift_scale": true, "selection": "cv" | "evidence"},
///    "nominal":  [...]}  // late-stage nominal; applied via set_nominal
///
/// "early" is required for bmf (with "nominal" inside it) and
/// univariate-bmf (moments only); "config" and the top-level "nominal" are
/// optional. Malformed specs throw DataError; invalid configurations
/// propagate the core's ConfigError/ContractError.
[[nodiscard]] std::unique_ptr<core::MomentEstimator> make_estimator(
    const JsonValue& spec);

/// Builds a multi-population fusion engine from a fusion "open" spec:
///
///   {"estimator": "fusion",
///    "populations": [{"name": "tt_27c",
///                     "early": {"mean": [...], "covariance": [[...]],
///                               "nominal": [...]},
///                     "nominal": [...]},            // late-stage nominal
///                    ...],
///    "correlation": [[...]],  // optional raw N x N estimate; shrunk and
///                             // PSD-projected per the config before use
///    "config":  {.. the bmf knobs above, plus "shrinkage",
///                "min_eigenvalue", "signal_floor"}}
///
/// Each population needs its own "early" stage; names default to "p<index>".
[[nodiscard]] std::unique_ptr<fusion::MultiPopulationEstimator>
make_fusion_estimator(const JsonValue& spec);

/// JSON -> linalg conversions shared with the protocol layer. `what` names
/// the member in DataError messages ("samples", "early.mean", ...).
[[nodiscard]] linalg::Vector parse_vector(const JsonValue& value,
                                          const std::string& what);
[[nodiscard]] linalg::Matrix parse_matrix(const JsonValue& value,
                                          const std::string& what);

/// One session: a named streaming estimator plus its shard cache. A session
/// is either single-population (one MomentEstimator; every population index
/// must be 0) or a fusion session (a MultiPopulationEstimator; population
/// indices select the target stream).
class Session {
 public:
  Session(std::string id, std::unique_ptr<core::MomentEstimator> estimator);
  Session(std::string id,
          std::unique_ptr<fusion::MultiPopulationEstimator> fusion);

  [[nodiscard]] const std::string& id() const { return id_; }

  /// True for multi-population fusion sessions.
  [[nodiscard]] bool is_fusion() const { return fusion_ != nullptr; }

  /// Populations served by this session (1 unless is_fusion()).
  [[nodiscard]] std::size_t population_count() const;

  /// Estimator tag ("mle", "bmf", ..., "fusion") for responses.
  [[nodiscard]] std::string estimator_name() const;

  /// Streams every row of `samples` into population `population`; returns
  /// the session's new total count (summed over populations).
  std::size_t observe(const linalg::Matrix& samples,
                      std::size_t population = 0);

  /// Absorbs a wire shard unless its (population, shard id) pair was
  /// already absorbed into this session. Returns false (and leaves the
  /// stream untouched) for such duplicates. Fusion sessions route by the
  /// shard's own population id.
  bool absorb(const stats::StatsShard& shard);

  /// The session's stream state as a wire shard (population `population`'s
  /// stream for fusion sessions, tagged with that id).
  [[nodiscard]] stats::StatsShard export_shard(
      std::uint64_t shard_id, std::size_t population = 0) const;

  /// Snapshot of the stream (>= 1 observed sample required, as per the
  /// estimator contract). Single-population sessions only.
  [[nodiscard]] core::EstimateResult estimate() const;

  /// Joint snapshot of a fusion session (throws on single-population ones).
  [[nodiscard]] fusion::FusionSnapshot estimate_fusion() const;

  [[nodiscard]] std::size_t observed_count() const;

 private:
  /// Validates `population` against the session shape (under the lock).
  void check_population(std::size_t population, const char* operation) const;
  /// Total observed samples over every population (caller holds the lock).
  [[nodiscard]] std::size_t observed_total() const;

  std::string id_;
  mutable std::mutex mutex_;
  std::unique_ptr<core::MomentEstimator> estimator_;       ///< xor fusion_
  std::unique_ptr<fusion::MultiPopulationEstimator> fusion_;
  /// (population, shard id) pairs already absorbed.
  std::set<std::pair<std::uint64_t, std::uint64_t>> absorbed_shards_;
};

/// Point-in-time view of one open session, for /statusz and diagnostics.
struct SessionSummary {
  std::string id;
  std::string estimator;     ///< "mle", "bmf", ..., "fusion"
  std::size_t populations = 0;
  std::size_t observed = 0;  ///< samples observed, summed over populations
};

/// Thread-safe id -> Session map.
class SessionRegistry {
 public:
  /// Creates a session from an "open" spec. Throws DataError when the id is
  /// already open.
  std::shared_ptr<Session> open(const std::string& id,
                                const JsonValue& spec);

  /// Looks a session up; throws DataError for unknown ids.
  [[nodiscard]] std::shared_ptr<Session> get(const std::string& id) const;

  /// Closes a session; throws DataError for unknown ids. In-flight requests
  /// holding the shared_ptr finish against the detached session.
  void close(const std::string& id);

  [[nodiscard]] std::size_t size() const;

  /// Snapshot of every open session, ordered by id. Sessions opened or
  /// closed concurrently may or may not appear; each summary is internally
  /// consistent.
  [[nodiscard]] std::vector<SessionSummary> summaries() const;

 private:
  /// Refreshes the serve.sessions / serve.fusion_sessions /
  /// serve.open_populations gauges (caller holds mutex_).
  void update_gauges() const;

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
};

}  // namespace bmfusion::serve
