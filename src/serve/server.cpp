#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/contracts.hpp"
#include "serve/admin.hpp"
#include "serve/protocol.hpp"
#include "telemetry/telemetry.hpp"

namespace bmfusion::serve {

namespace {

[[noreturn]] void socket_error(const std::string& what) {
  throw DataError("serve socket failure",
                  ErrorContext{}.with_operation("serve_listen").with_detail(
                      what + ": " + std::strerror(errno)));
}

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

/// Per-event read cap: level-triggered epoll re-reports leftovers, so a
/// firehose connection cannot starve its loop-mates.
constexpr std::size_t kMaxReadPerEvent = 256u << 10;

/// Admin requests are one GET line plus a handful of headers; anything
/// bigger is not a scraper.
constexpr std::size_t kMaxAdminRequestBytes = 8u << 10;

/// Creates a non-blocking loopback listener; returns the fd and writes the
/// bound port (useful with port 0). Throws DataError on failure.
int listen_loopback(std::uint16_t port, int backlog,
                    std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) socket_error("socket");
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    socket_error("bind");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    ::close(fd);
    socket_error("getsockname");
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    socket_error("listen");
  }
  bound_port = ntohs(addr.sin_port);
  return fd;
}

std::string oversized_line_response(std::size_t limit) {
  return "{\"ok\":false,\"error\":{\"type\":\"DataError\",\"message\":"
         "\"request exceeds max_request_bytes (" +
         std::to_string(limit) + ")\"}}\n";
}

}  // namespace

/// One epoll loop: owns its connections outright (fd, buffers, framing
/// mode) and is the only thread that touches them. Loop 0 additionally
/// owns the accept path.
class Server::IoLoop {
 public:
  IoLoop(Server& server, bool owns_listener, std::size_t index)
      : server_(server), owns_listener_(owns_listener) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) socket_error("epoll_create1");
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      ::close(epoll_fd_);
      socket_error("eventfd");
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);
    if (owns_listener_) {
      event.data.fd = server_.listen_fd_;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, server_.listen_fd_, &event);
      if (server_.admin_listen_fd_ >= 0) {
        event.data.fd = server_.admin_listen_fd_;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, server_.admin_listen_fd_,
                    &event);
      }
    }
#if BMFUSION_TELEMETRY_ENABLED
    // Per-loop gauges are resolved once here (the name strings allocate),
    // so publishing from the event loop stays allocation-free. Mirrors the
    // fusion.population.<p>.* registration idiom.
    const std::string prefix = "serve.loop." + std::to_string(index) + ".";
    auto& registry = telemetry::Registry::instance();
    gauge_connections_ = &registry.gauge(prefix + "connections");
    gauge_read_bytes_ = &registry.gauge(prefix + "read_buffer_bytes");
    gauge_write_bytes_ = &registry.gauge(prefix + "write_buffer_bytes");
    gauge_inbox_ = &registry.gauge(prefix + "accept_inbox");
    gauge_pipeline_ = &registry.gauge(prefix + "pipeline_depth");
#else
    (void)index;
#endif
  }

  ~IoLoop() {
    ::close(wake_fd_);
    ::close(epoll_fd_);
  }

  IoLoop(const IoLoop&) = delete;
  IoLoop& operator=(const IoLoop&) = delete;

  /// Hands a freshly accepted fd to this loop (callable from any thread).
  void add_pending(int fd, bool admin) {
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      inbox_.push_back({fd, admin});
    }
    wake();
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }

  /// Thread body: serve until stop is requested, then drain and close.
  void run() {
    epoll_event events[64];
    while (!server_.stopping_.load(std::memory_order_acquire)) {
      const int count = ::epoll_wait(
          epoll_fd_, events, static_cast<int>(std::size(events)), -1);
      if (count < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < count; ++i) {
        dispatch_event(events[i]);
      }
      adopt_pending();
#if BMFUSION_TELEMETRY_ENABLED
      // Connection-count changes publish immediately so the gauge never
      // lies about membership; the byte-level gauges refresh on a 64-batch
      // stride — they are sampled by scrapes, not read per request.
      if (connections_.size() != published_connections_ ||
          (gauge_tick_++ & 63u) == 0) {
        publish_loop_gauges();
      }
#endif
    }
    drain_and_close();
  }

  /// Called from Server::stop() after join: closes anything still parked
  /// in the inbox (a last-instant accept racing the stop flag).
  void close_leftovers() {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    for (const auto& [fd, admin] : inbox_) ::close(fd);
    inbox_.clear();
  }

 private:
  struct Connection {
    int fd = -1;
    bool admin = false;             ///< accepted on the admin listener
    bool binary = false;            ///< after a binary "hello"
    bool close_after_flush = false;
    bool reading_disabled = false;  ///< oversize / peer half-close
    std::uint32_t interest = EPOLLIN;  ///< currently registered events
    std::string in;
    std::size_t in_pos = 0;    ///< consumption cursor (compacted per event)
    std::size_t scan_pos = 0;  ///< newline-scan high-water mark
    std::string out;
    std::size_t out_pos = 0;
  };

  void dispatch_event(const epoll_event& event) {
    const int fd = event.data.fd;
    if (fd == wake_fd_) {
      std::uint64_t drained = 0;
      [[maybe_unused]] const ssize_t n =
          ::read(wake_fd_, &drained, sizeof drained);
      return;
    }
    if (owns_listener_ && fd == server_.listen_fd_) {
      handle_accept(server_.listen_fd_, /*admin=*/false);
      return;
    }
    if (owns_listener_ && fd == server_.admin_listen_fd_) {
      handle_accept(server_.admin_listen_fd_, /*admin=*/true);
      return;
    }
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;  // destroyed earlier this batch
    Connection& conn = *it->second;
    if ((event.events & (EPOLLERR | EPOLLHUP)) != 0 &&
        (event.events & EPOLLIN) == 0) {
      destroy(conn);
      return;
    }
    if ((event.events & EPOLLIN) != 0) {
      if (!on_readable(conn)) return;  // destroyed
    }
    if ((event.events & EPOLLOUT) != 0) flush(conn);
  }

  void handle_accept(int listen_fd, bool admin) {
    while (true) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;  // EAGAIN, or the listener was shut down
      }
      if (server_.stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        return;
      }
      // Request/response protocol with small frames: Nagle + delayed ACK
      // would add ~40ms per round trip.
      const int nodelay = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
      if (admin) {
        BMF_COUNTER_ADD("serve.admin.connections", 1);
      } else {
        BMF_COUNTER_ADD("serve.connections", 1);
      }
      const std::size_t index =
          server_.next_loop_.fetch_add(1, std::memory_order_relaxed) %
          server_.loops_.size();
      Server::IoLoop& target = *server_.loops_[index];
      if (&target == this) {
        adopt(fd, admin);
      } else {
        target.add_pending(fd, admin);
      }
    }
  }

  void adopt_pending() {
    std::vector<std::pair<int, bool>> pending;
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      pending.swap(inbox_);
    }
#if BMFUSION_TELEMETRY_ENABLED
    // Handoff burst depth: how many accepted fds were waiting for this loop.
    gauge_inbox_->set(static_cast<double>(pending.size()));
#endif
    for (const auto& [fd, admin] : pending) adopt(fd, admin);
  }

  void adopt(int fd, bool admin) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->admin = admin;
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
      ::close(fd);
      return;
    }
    connections_.emplace(fd, std::move(conn));
  }

  /// The one place a connection fd is closed and its state reaped.
  void destroy(Connection& conn) {
    const int fd = conn.fd;
    ::close(fd);  // auto-removes fd from the epoll set
    connections_.erase(fd);
    BMF_COUNTER_ADD("serve.disconnects", 1);
  }

  /// Reads until EAGAIN (capped per event), handles every complete
  /// request, coalesces the responses, and starts the flush. Returns false
  /// when the connection was destroyed.
  bool on_readable(Connection& conn) {
    if (conn.reading_disabled) return true;
    char chunk[64 << 10];
    bool peer_eof = false;
    std::size_t read_this_event = 0;
    while (read_this_event < kMaxReadPerEvent) {
      const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        conn.in.append(chunk, static_cast<std::size_t>(n));
        read_this_event += static_cast<std::size_t>(n);
        // A request larger than the cap can never complete; stop piling
        // bytes and let process_buffered answer the error.
        if (conn.in.size() - conn.in_pos >
            server_.config_.max_request_bytes) {
          break;
        }
        continue;
      }
      if (n == 0) {
        peer_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      destroy(conn);  // ECONNRESET and friends
      return false;
    }
    if (!process_buffered(conn)) return false;
    if (peer_eof) {
      // Half-close: the peer is done sending but may still be reading the
      // responses to its pipelined requests.
      conn.reading_disabled = true;
      conn.close_after_flush = true;
      if (conn.out_pos == conn.out.size()) {
        destroy(conn);
        return false;
      }
    }
    return flush(conn);
  }

  /// Handles every complete request sitting in the read buffer via a
  /// cursor, then compacts once — O(bytes) for a packet of pipelined
  /// requests where substr+erase-per-line was O(bytes^2). Returns false
  /// when the connection was destroyed.
  bool process_buffered(Connection& conn) {
    if (conn.admin) return process_admin(conn);
    const std::size_t limit = server_.config_.max_request_bytes;
    bool fatal = false;
    std::size_t handled = 0;
    while (!fatal) {
      if (!conn.binary) {
        const std::size_t scan_from = std::max(conn.in_pos, conn.scan_pos);
        const std::size_t newline = conn.in.find('\n', scan_from);
        if (newline == std::string::npos) {
          conn.scan_pos = conn.in.size();
          if (conn.in.size() - conn.in_pos > limit) {
            reject_oversized(conn, oversized_line_response(limit));
            fatal = true;
          }
          break;
        }
        std::string_view line(conn.in.data() + conn.in_pos,
                              newline - conn.in_pos);
        conn.in_pos = newline + 1;
        conn.scan_pos = conn.in_pos;
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        if (line.empty()) continue;
        if (line.size() > limit) {
          reject_oversized(conn, oversized_line_response(limit));
          fatal = true;
          break;
        }
        ProtocolResult result = handle_request(server_.sessions_, line);
        ++handled;
        conn.out += result.response;
        conn.out += '\n';
        if (result.switch_to_binary) conn.binary = true;
        if (result.shutdown) {
          conn.close_after_flush = true;
          server_.request_stop();
          fatal = true;  // stop parsing; the drain flushes the response
        }
      } else {
        const std::size_t available = conn.in.size() - conn.in_pos;
        if (available < wire::kHeaderBytes) break;
        const unsigned char* head = reinterpret_cast<const unsigned char*>(
            conn.in.data() + conn.in_pos);
        const std::uint8_t opcode = head[1];
        std::uint16_t req_flags = 0;
        std::memcpy(&req_flags, head + 2, sizeof req_flags);
        std::uint32_t payload_size = 0;
        std::memcpy(&payload_size, head + 4, sizeof payload_size);
        if (head[0] != wire::kMagic || payload_size > limit) {
          // No way to resync a corrupt or oversized frame stream: answer
          // once, then close.
          std::string error;
          wire::append_string(
              error, "DataError");
          error += head[0] != wire::kMagic
                       ? "bad frame magic"
                       : "frame exceeds max_request_bytes (" +
                             std::to_string(limit) + ")";
          std::string frame;
          wire::append_frame(frame, opcode, wire::kFlagError, error);
          reject_oversized(conn, frame);
          fatal = true;
          break;
        }
        if (available < wire::kHeaderBytes + payload_size) break;
        const std::string_view payload(
            conn.in.data() + conn.in_pos + wire::kHeaderBytes, payload_size);
        conn.in_pos += wire::kHeaderBytes + payload_size;
        conn.scan_pos = conn.in_pos;
        BinaryResult result =
            handle_binary_request(server_.sessions_, opcode, req_flags,
                                  payload);
        ++handled;
        conn.out += result.response;
        if (result.shutdown) {
          conn.close_after_flush = true;
          server_.request_stop();
          fatal = true;
        }
      }
    }
    // The single compaction per read event.
    if (conn.in_pos > 0) {
      conn.in.erase(0, conn.in_pos);
      conn.scan_pos -= std::min(conn.scan_pos, conn.in_pos);
      conn.in_pos = 0;
    }
#if BMFUSION_TELEMETRY_ENABLED
    // Requests answered from one readable event = observed pipeline depth.
    if (handled > 0) gauge_pipeline_->set(static_cast<double>(handled));
#else
    (void)handled;
#endif
    return true;
  }

  /// Admin plane: one HTTP GET per connection. Answers as soon as the
  /// request line is complete (scrapers send the whole request in one
  /// packet; trailing header bytes are ignored because reading stops),
  /// then closes after the flush. Returns false when the connection was
  /// destroyed.
  bool process_admin(Connection& conn) {
    const std::size_t newline = conn.in.find('\n');
    if (newline == std::string::npos) {
      if (conn.in.size() > kMaxAdminRequestBytes) {
        destroy(conn);
        return false;
      }
      return true;
    }
    std::string_view line(conn.in.data(), newline);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    // "METHOD SP PATH SP HTTP/x.x"; a bare path (no version) also works.
    std::string_view method = line;
    std::string_view path;
    const std::size_t sp1 = line.find(' ');
    if (sp1 != std::string_view::npos) {
      method = line.substr(0, sp1);
      const std::size_t sp2 = line.find(' ', sp1 + 1);
      path = sp2 == std::string_view::npos
                 ? line.substr(sp1 + 1)
                 : line.substr(sp1 + 1, sp2 - sp1 - 1);
    }
    const std::size_t query = path.find('?');
    if (query != std::string_view::npos) path = path.substr(0, query);
    conn.out += handle_admin_request(method, path, server_.sessions_);
    conn.reading_disabled = true;
    conn.close_after_flush = true;
    conn.in.clear();
    conn.in_pos = 0;
    conn.scan_pos = 0;
    return true;
  }

  /// Oversized request / corrupt frame: answer in-band, count it, stop
  /// reading, close once the error has left.
  void reject_oversized(Connection& conn, std::string response) {
    BMF_COUNTER_ADD("serve.oversized_requests", 1);
    conn.out += response;
    conn.close_after_flush = true;
    conn.reading_disabled = true;
    conn.in.clear();
    conn.in_pos = 0;
    conn.scan_pos = 0;
  }

  /// Sends as much of the write buffer as the socket accepts; arms
  /// EPOLLOUT for the remainder. Returns false when the connection was
  /// destroyed (fully flushed close, dead peer, or slow-consumer cap).
  bool flush(Connection& conn) {
#if BMFUSION_TELEMETRY_ENABLED
    // Sampled 1-in-64: a flush is per event batch, so timing every one
    // costs two clock reads per batch on the hot path; one sample per 64
    // keeps the latency quantiles honest at ~zero steady-state cost.
    const bool timed = conn.out_pos < conn.out.size() &&
                       (flush_tick_++ & 63u) == 0;
    const std::uint64_t start_ns = timed ? telemetry::now_ns() : 0;
#endif
    while (conn.out_pos < conn.out.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data() + conn.out_pos,
                 conn.out.size() - conn.out_pos, kSendFlags);
      if (n >= 0) {
        conn.out_pos += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      destroy(conn);
      return false;
    }
#if BMFUSION_TELEMETRY_ENABLED
    if (timed) {
      BMF_HISTOGRAM_RECORD_US(
          "serve.write_us",
          static_cast<double>(telemetry::now_ns() - start_ns) * 1e-3);
    }
#endif
    if (conn.out_pos == conn.out.size()) {
      conn.out.clear();
      conn.out_pos = 0;
      if (conn.close_after_flush) {
        destroy(conn);
        return false;
      }
    } else if (conn.out.size() - conn.out_pos >
               server_.config_.max_response_buffer_bytes) {
      BMF_COUNTER_ADD("serve.slow_consumer_closes", 1);
      destroy(conn);
      return false;
    }
    update_interest(conn);
    return true;
  }

  void update_interest(Connection& conn) {
    std::uint32_t wanted = conn.reading_disabled ? 0u : EPOLLIN;
    if (conn.out_pos < conn.out.size()) wanted |= EPOLLOUT;
    if (wanted == conn.interest) return;
    epoll_event event{};
    event.events = wanted;
    event.data.fd = conn.fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &event);
    conn.interest = wanted;
  }

  /// Shutdown path: answer the requests already buffered, then keep
  /// flushing pending responses until everything drained or the deadline
  /// passed, then close whatever is left.
  void drain_and_close() {
    adopt_pending();
    {
      std::vector<int> fds;
      fds.reserve(connections_.size());
      for (const auto& [fd, conn] : connections_) fds.push_back(fd);
      for (const int fd : fds) {
        const auto it = connections_.find(fd);
        if (it == connections_.end()) continue;
        Connection& conn = *it->second;
        conn.reading_disabled = true;
        conn.close_after_flush = true;
        if (process_buffered(conn)) flush(conn);
      }
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(server_.config_.drain_timeout_ms);
    epoll_event events[64];
    while (!connections_.empty() &&
           std::chrono::steady_clock::now() < deadline) {
      const int count =
          ::epoll_wait(epoll_fd_, events, static_cast<int>(std::size(events)),
                       /*timeout_ms=*/20);
      if (count < 0 && errno != EINTR) break;
      std::vector<int> fds;
      fds.reserve(connections_.size());
      for (const auto& [fd, conn] : connections_) fds.push_back(fd);
      for (const int fd : fds) {
        const auto it = connections_.find(fd);
        if (it != connections_.end()) flush(*it->second);
      }
    }
    while (!connections_.empty()) {
      destroy(*connections_.begin()->second);
    }
  }

#if BMFUSION_TELEMETRY_ENABLED
  /// Publishes the per-loop gauges; O(connections), on membership changes
  /// and every 64th epoll batch (see run()).
  void publish_loop_gauges() {
    std::size_t read_bytes = 0;
    std::size_t write_bytes = 0;
    for (const auto& [fd, conn] : connections_) {
      read_bytes += conn->in.size() - conn->in_pos;
      write_bytes += conn->out.size() - conn->out_pos;
    }
    published_connections_ = connections_.size();
    gauge_connections_->set(static_cast<double>(published_connections_));
    gauge_read_bytes_->set(static_cast<double>(read_bytes));
    gauge_write_bytes_->set(static_cast<double>(write_bytes));
  }
#endif

  Server& server_;
  bool owns_listener_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::mutex inbox_mutex_;
  /// Freshly accepted (fd, is_admin) pairs awaiting adoption.
  std::vector<std::pair<int, bool>> inbox_;
#if BMFUSION_TELEMETRY_ENABLED
  telemetry::Gauge* gauge_connections_ = nullptr;
  telemetry::Gauge* gauge_read_bytes_ = nullptr;
  telemetry::Gauge* gauge_write_bytes_ = nullptr;
  telemetry::Gauge* gauge_inbox_ = nullptr;
  telemetry::Gauge* gauge_pipeline_ = nullptr;
  std::uint32_t flush_tick_ = 0;   ///< serve.write_us 1-in-64 sampler
  std::uint32_t gauge_tick_ = 0;   ///< per-loop gauge publish stride
  std::size_t published_connections_ = 0;  ///< last published gauge value
#endif
};

Server::Server(ServerConfig config) : config_(config) {}

Server::~Server() { stop(); }

void Server::start() {
  BMFUSION_REQUIRE(listen_fd_ < 0, "server already started");
  BMFUSION_REQUIRE(config_.admin_port <= 65535,
                   "admin_port must be -1 (disabled) or a valid port");
  listen_fd_ = listen_loopback(config_.port, config_.backlog, bound_port_);
  if (config_.admin_port >= 0) {
    try {
      admin_listen_fd_ =
          listen_loopback(static_cast<std::uint16_t>(config_.admin_port),
                          config_.backlog, bound_admin_port_);
    } catch (...) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw;
    }
  }
  stopping_.store(false, std::memory_order_release);
  stopped_ = false;

  std::size_t io_threads = config_.io_threads;
  if (io_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    io_threads = std::clamp<std::size_t>(hw, 1, 4);
  }
  loops_.reserve(io_threads);
  for (std::size_t i = 0; i < io_threads; ++i) {
    loops_.push_back(
        std::make_unique<IoLoop>(*this, /*owns_listener=*/i == 0, i));
  }
  threads_.reserve(io_threads);
  for (std::size_t i = 0; i < io_threads; ++i) {
    threads_.emplace_back([loop = loops_[i].get()] { loop->run(); });
  }
}

void Server::request_stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  // Wakes any in-flight accept with EINVAL and refuses new peers; the fd
  // itself stays allocated (so its number cannot be reused under a racing
  // accept) until stop() closes it after the join.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (admin_listen_fd_ >= 0) ::shutdown(admin_listen_fd_, SHUT_RDWR);
  for (const auto& loop : loops_) loop->wake();
  // Taking the mutex orders the flag flip against wait()'s predicate
  // check, so the notify cannot slip between check and sleep. Callers of
  // request_stop never hold stop_mutex_ (stop() acquires it afterwards).
  { std::lock_guard<std::mutex> lock(stop_mutex_); }
  stop_cv_.notify_all();
}

void Server::stop() {
  request_stop();
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (listen_fd_ < 0 || stopped_) return;
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  for (const auto& loop : loops_) loop->close_leftovers();
  threads_.clear();
  loops_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (admin_listen_fd_ >= 0) {
    ::close(admin_listen_fd_);
    admin_listen_fd_ = -1;
  }
  stopped_ = true;
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire) || stopped_;
    });
  }
  stop();
}

std::size_t run_stdio(SessionRegistry& sessions, std::istream& in,
                      std::ostream& out) {
  std::size_t handled = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const ProtocolResult result = handle_request(sessions, line);
    out << result.response << '\n' << std::flush;
    ++handled;
    if (result.shutdown) break;
  }
  return handled;
}

}  // namespace bmfusion::serve
