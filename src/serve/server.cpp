#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "serve/protocol.hpp"
#include "telemetry/telemetry.hpp"

namespace bmfusion::serve {

namespace {

[[noreturn]] void socket_error(const std::string& what) {
  throw DataError("serve socket failure",
                  ErrorContext{}.with_operation("serve_listen").with_detail(
                      what + ": " + std::strerror(errno)));
}

/// Sends the whole buffer; returns false when the peer went away.
bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
#ifdef MSG_NOSIGNAL
    const int flags = MSG_NOSIGNAL;
#else
    const int flags = 0;
#endif
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerConfig config) : config_(config) {}

Server::~Server() { stop(); }

void Server::start() {
  BMFUSION_REQUIRE(listen_fd_ < 0, "server already started");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) socket_error("socket");
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    socket_error("bind");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    ::close(fd);
    socket_error("getsockname");
  }
  if (::listen(fd, config_.backlog) < 0) {
    ::close(fd);
    socket_error("listen");
  }
  bound_port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  accept_thread_ = std::thread(&Server::accept_loop, this);
}

void Server::accept_loop() {
  const int listener = listen_fd_;
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener was shut down
    }
    // Request/response protocol with small frames: Nagle + delayed ACK
    // would add ~40ms per round trip.
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ::close(fd);
      break;
    }
    BMF_COUNTER_ADD("serve.connections", 1);
    connections_.emplace_back(fd,
                              std::thread(&Server::serve_connection, this,
                                          fd));
  }
}

void Server::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      ProtocolResult result = handle_request(sessions_, line);
      result.response += '\n';  // one send: keep the frame in one packet
      if (!send_all(fd, result.response)) {
        open = false;
        break;
      }
      if (result.shutdown) {
        // Response is on the wire; tear the server down. This thread's own
        // socket is shut down too, so the next recv ends the loop.
        close_listener();
        open = false;
      }
    }
  }
}

void Server::close_listener() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return;
  stopping_ = true;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& [fd, thread] : connections_) {
    (void)thread;
    ::shutdown(fd, SHUT_RDWR);
  }
}

void Server::stop() {
  if (listen_fd_ < 0) return;
  close_listener();
  if (accept_thread_.joinable()) accept_thread_.join();
  // After the accept loop has exited no new connections can appear, so the
  // vector is stable without the lock (held only against late mutation).
  std::vector<std::pair<int, std::thread>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (auto& [fd, thread] : connections) {
    if (thread.joinable()) thread.join();
    ::close(fd);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  stop();
}

std::size_t run_stdio(SessionRegistry& sessions, std::istream& in,
                      std::ostream& out) {
  std::size_t handled = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const ProtocolResult result = handle_request(sessions, line);
    out << result.response << '\n' << std::flush;
    ++handled;
    if (result.shutdown) break;
  }
  return handled;
}

}  // namespace bmfusion::serve
