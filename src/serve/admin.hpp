// Admin plane for the serve stack: a minimal HTTP/1.0 responder that the
// epoll transport drives on a separate loopback listener (--admin-port).
//
// Endpoints (GET only, one request per connection, response then close):
//   /metrics       Prometheus text exposition (telemetry/export.hpp)
//   /metrics.json  compact JSON metrics snapshot (what bmf_doctor --live
//                  ingests)
//   /healthz       "ok\n" while the server is accepting requests
//   /statusz       single-line JSON: server/wire version, uptime, build
//                  flags, per-session summaries, fusion gauges, and the
//                  full compact metrics snapshot under "metrics"
//
// The responder is transport-agnostic: it maps a parsed request line to a
// complete HTTP response byte string, so the server, the tests, and any
// future stdio shim can share it. Scrapes are admin-plane traffic — they
// ride the same IoLoops but never touch the session hot path beyond the
// registry snapshot that /statusz takes.
#pragma once

#include <string>
#include <string_view>

#include "serve/session.hpp"

namespace bmfusion::serve {

/// The /statusz document (single line, no trailing newline).
[[nodiscard]] std::string statusz_json(const SessionRegistry& sessions);

/// Maps one parsed admin request to a full HTTP/1.0 response (status line,
/// headers with Content-Length, blank line, body). Unknown paths answer
/// 404, non-GET methods 405; every call ticks serve.admin.requests.
[[nodiscard]] std::string handle_admin_request(std::string_view method,
                                               std::string_view path,
                                               const SessionRegistry& sessions);

}  // namespace bmfusion::serve
