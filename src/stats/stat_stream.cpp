#include "stats/stat_stream.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace bmfusion::stats {

StatStream::StatStream(std::size_t dimension)
    : dimension_(dimension), partial_(dimension) {
  BMFUSION_REQUIRE(dimension >= 1, "stat stream needs dimension >= 1");
}

void StatStream::require_dimension(std::size_t dimension) {
  if (dimension_ == 0) {
    BMFUSION_REQUIRE(dimension >= 1, "stat stream needs dimension >= 1");
    dimension_ = dimension;
    partial_ = SufficientStats(dimension);
    return;
  }
  BMFUSION_REQUIRE(dimension == dimension_,
                   "stat stream dimension mismatch");
}

void StatStream::add(const linalg::Vector& sample) {
  require_dimension(sample.size());
  partial_.add(sample);
  ++partial_count_;
  ++count_;
  if (partial_count_ == kBlockSamples) {
    push_regular(std::move(partial_), 1);
    partial_ = SufficientStats(dimension_);
    partial_count_ = 0;
  }
}

void StatStream::add_rows(const linalg::Matrix& samples) {
  if (samples.rows() == 0) return;
  require_dimension(samples.cols());
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    add(samples.row(i));
  }
}

void StatStream::absorb(const SufficientStats& stats) {
  if (stats.count() == 0) return;
  require_dimension(stats.dimension());
  close_partial();
  runs_.push_back(Run{stats, 0});
  count_ += stats.count();
}

void StatStream::merge(const StatStream& other) {
  if (other.count_ == 0) return;
  require_dimension(other.dimension_);
  // This stream's open block would shift the other stream's block grid, so
  // close it; aligned merges (this->partial empty) keep the bitwise path.
  close_partial();
  for (const Run& run : other.runs_) {
    if (run.blocks == 0) {
      runs_.push_back(run);
    } else {
      push_regular(run.stats, run.blocks);
    }
  }
  if (other.partial_count_ > 0) {
    runs_.push_back(Run{other.partial_, 0});
  }
  count_ += other.count_;
}

SufficientStats StatStream::totals() const {
  BMFUSION_REQUIRE(count_ >= 1, "stat stream totals need >= 1 sample");
  // Newest-to-oldest fold, accumulating earlier runs on the left: with
  // power-of-two runs this reproduces exactly the pairwise tree of the
  // Monte Carlo reduction (see the binary-counter equivalence test).
  SufficientStats acc;
  bool have = false;
  if (partial_count_ > 0) {
    acc = partial_;
    have = true;
  }
  for (std::size_t i = runs_.size(); i-- > 0;) {
    if (!have) {
      acc = runs_[i].stats;
      have = true;
    } else {
      acc = runs_[i].stats + acc;
    }
  }
  return acc;
}

StatStream StatStream::from_parts(std::size_t dimension,
                                  std::vector<Run> runs,
                                  SufficientStats partial) {
  BMFUSION_REQUIRE(dimension >= 1, "stat stream needs dimension >= 1");
  StatStream stream(dimension);
  for (const Run& run : runs) {
    BMFUSION_REQUIRE(run.stats.dimension() == dimension,
                     "stat stream run dimension mismatch");
    BMFUSION_REQUIRE(run.stats.count() >= 1,
                     "stat stream run must summarize >= 1 sample");
    BMFUSION_REQUIRE(
        run.blocks == 0 || (run.blocks & (run.blocks - 1)) == 0,
        "regular stat stream runs must cover a power-of-two block count");
    stream.count_ += run.stats.count();
  }
  if (partial.dimension() != 0) {
    BMFUSION_REQUIRE(partial.dimension() == dimension,
                     "stat stream partial dimension mismatch");
    BMFUSION_REQUIRE(partial.count() < kBlockSamples,
                     "stat stream partial block must hold < kBlockSamples");
    stream.partial_count_ = partial.count();
    stream.count_ += partial.count();
    stream.partial_ = std::move(partial);
  }
  stream.runs_ = std::move(runs);
  return stream;
}

void StatStream::push_regular(SufficientStats stats, std::uint64_t blocks) {
  // Binary-counter carry: equal-width neighbours collapse (earlier run on
  // the left of the add), doubling the width, until the widths differ.
  // Irregular runs (blocks == 0) never match, so they fence the carries.
  while (!runs_.empty() && runs_.back().blocks == blocks) {
    stats = runs_.back().stats + stats;
    blocks *= 2;
    runs_.pop_back();
  }
  runs_.push_back(Run{std::move(stats), blocks});
}

void StatStream::close_partial() {
  if (partial_count_ == 0) return;
  runs_.push_back(Run{std::move(partial_), 0});
  partial_ = SufficientStats(dimension_);
  partial_count_ = 0;
}

}  // namespace bmfusion::stats
