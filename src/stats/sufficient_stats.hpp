// Additive sufficient statistics (n, sum x, sum x x^T) of a sample set.
//
// Lives in the stats layer so both the estimation core (cross-validation
// fold arithmetic) and the circuit Monte Carlo driver (streaming moment
// accumulation without materializing the N x d sample matrix) can share one
// implementation; core re-exports it as core::SufficientStats.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace bmfusion::stats {

/// Additive sufficient statistics (n, sum x, sum x x^T) of a sample set.
///
/// Everything the conjugate normal-Wishart machinery needs from data —
/// sample mean, scatter matrix, likelihood scores — is a function of these
/// three quantities, and they combine by plain addition/subtraction. The
/// cross-validation engine exploits this: each fold's statistics are
/// computed once, and every leave-one-fold-out training set is formed by
/// subtracting the fold from the totals instead of re-scanning raw samples.
/// The Monte Carlo driver exploits the same property in the other
/// direction: per-block accumulators combine by a deterministic pairwise
/// reduction, independent of thread count.
class SufficientStats {
 public:
  SufficientStats() = default;
  explicit SufficientStats(std::size_t dimension);

  /// Accumulates the rows of `samples` (one pass).
  [[nodiscard]] static SufficientStats from_samples(
      const linalg::Matrix& samples);

  /// Rebuilds statistics from their raw components (wire-format parsing,
  /// affine transforms of already-summarized data). Requires count >= 1 and
  /// matching square shapes; throws ContractError otherwise.
  [[nodiscard]] static SufficientStats from_raw(std::size_t count,
                                               linalg::Vector sum,
                                               linalg::Matrix sum_outer);

  /// Folds one sample in; size must match dimension().
  void add(const linalg::Vector& sample);

  /// Set union / set difference of the underlying sample sets. Subtraction
  /// requires `other` to be a subset (count() >= other.count()).
  SufficientStats& operator+=(const SufficientStats& other);
  SufficientStats& operator-=(const SufficientStats& other);
  [[nodiscard]] friend SufficientStats operator+(SufficientStats a,
                                                 const SufficientStats& b) {
    a += b;
    return a;
  }
  [[nodiscard]] friend SufficientStats operator-(SufficientStats a,
                                                 const SufficientStats& b) {
    a -= b;
    return a;
  }

  /// Exact equality of (count, sum, sum x x^T) — the bitwise-determinism
  /// contract of the streaming Monte Carlo path is checked through this.
  [[nodiscard]] friend bool operator==(const SufficientStats& a,
                                       const SufficientStats& b) {
    return a.count_ == b.count_ && a.sum_ == b.sum_ &&
           a.sum_outer_ == b.sum_outer_;
  }

  [[nodiscard]] std::size_t dimension() const { return sum_.size(); }
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] const linalg::Vector& sum() const { return sum_; }

  /// Uncentered second-moment sum x x^T (exposed for determinism checks).
  [[nodiscard]] const linalg::Matrix& sum_outer() const { return sum_outer_; }

  /// Sample mean (paper eq. 10); requires count() >= 1.
  [[nodiscard]] linalg::Vector mean() const;

  /// Scatter matrix S = sum_i (X_i - Xbar)(X_i - Xbar)^T (paper eq. 26),
  /// symmetrized; requires count() >= 1.
  [[nodiscard]] linalg::Matrix scatter() const;

 private:
  std::size_t count_ = 0;
  linalg::Vector sum_;
  linalg::Matrix sum_outer_;  ///< uncentered second moment sum x x^T
};

}  // namespace bmfusion::stats
