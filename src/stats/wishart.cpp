#include "stats/wishart.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "stats/special.hpp"
#include "stats/univariate.hpp"

namespace bmfusion::stats {

using linalg::Matrix;

Wishart::Wishart(double dof, Matrix scale)
    : dof_(dof), scale_(std::move(scale)), scale_chol_(scale_) {
  BMFUSION_REQUIRE(
      dof_ > static_cast<double>(scale_.rows()) - 1.0,
      "wishart dof must exceed d - 1");
}

Matrix Wishart::mean() const { return scale_ * dof_; }

Matrix Wishart::mode() const {
  const double d = static_cast<double>(dimension());
  BMFUSION_REQUIRE(dof_ > d + 1.0, "wishart mode needs dof > d + 1");
  return scale_ * (dof_ - d - 1.0);
}

Matrix Wishart::sample(Xoshiro256pp& rng) const {
  const std::size_t d = dimension();
  // Bartlett: A lower-triangular, A_ii ~ sqrt(chi^2_{nu-i}), A_ij ~ N(0,1).
  Matrix a(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    a(i, i) = std::sqrt(
        sample_chi_squared(rng, dof_ - static_cast<double>(i)));
    for (std::size_t j = 0; j < i; ++j) {
      a(i, j) = sample_standard_normal(rng);
    }
  }
  const Matrix& l = scale_chol_.factor();
  const Matrix la = l * a;
  Matrix lambda = la * la.transposed();
  lambda.symmetrize();
  return lambda;
}

double Wishart::log_pdf(const Matrix& lambda) const {
  BMFUSION_REQUIRE(lambda.rows() == dimension() && lambda.is_square(),
                   "wishart log_pdf dimension mismatch");
  const double d = static_cast<double>(dimension());
  const linalg::Cholesky lam_chol(lambda);  // throws if not SPD
  // tr(T^{-1} Lambda) = sum_ij [T^{-1}]_ij Lambda_ij.
  const Matrix t_inv = scale_chol_.inverse();
  double trace_term = 0.0;
  for (std::size_t r = 0; r < dimension(); ++r) {
    for (std::size_t c = 0; c < dimension(); ++c) {
      trace_term += t_inv(r, c) * lambda(c, r);
    }
  }
  const double log_det_lambda = lam_chol.log_determinant();
  const double log_det_scale = scale_chol_.log_determinant();
  const double log_norm =
      0.5 * dof_ * d * std::log(2.0) + 0.5 * dof_ * log_det_scale +
      log_multivariate_gamma(0.5 * dof_, dimension());
  return 0.5 * (dof_ - d - 1.0) * log_det_lambda - 0.5 * trace_term -
         log_norm;
}

}  // namespace bmfusion::stats
