#include "stats/mvn.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/lu.hpp"
#include "stats/univariate.hpp"

namespace bmfusion::stats {

using linalg::Matrix;
using linalg::Vector;

namespace {
constexpr double kLog2Pi = 1.837877066409345483560659472811235279;

linalg::Cholesky factor_covariance(const Matrix& covariance) {
  try {
    return linalg::Cholesky(covariance);
  } catch (const NumericError& e) {
    throw NumericError("mvn: covariance is not positive definite",
                       ErrorContext{}
                           .with_operation("mvn")
                           .with_dimension(covariance.rows())
                           .with_detail(e.what()));
  }
}
}  // namespace

MultivariateNormal::MultivariateNormal(Vector mean, Matrix covariance)
    : mean_(std::move(mean)),
      covariance_(std::move(covariance)),
      chol_(factor_covariance(covariance_)) {
  BMFUSION_REQUIRE(covariance_.rows() == mean_.size(),
                   "mvn covariance size must match mean size");
}

Vector MultivariateNormal::sample(Xoshiro256pp& rng) const {
  const std::size_t d = dimension();
  Vector z(d);
  for (std::size_t i = 0; i < d; ++i) z[i] = sample_standard_normal(rng);
  const Matrix& l = chol_.factor();
  Vector x = mean_;
  for (std::size_t r = 0; r < d; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c <= r; ++c) acc += l(r, c) * z[c];
    x[r] += acc;
  }
  return x;
}

Matrix MultivariateNormal::sample_matrix(Xoshiro256pp& rng,
                                         std::size_t count) const {
  Matrix out(count, dimension());
  for (std::size_t i = 0; i < count; ++i) {
    out.set_row(i, sample(rng));
  }
  return out;
}

double MultivariateNormal::log_pdf(const Vector& x) const {
  BMFUSION_REQUIRE(x.size() == dimension(), "mvn log_pdf size mismatch");
  const double maha = chol_.mahalanobis_squared(x - mean_);
  return -0.5 * (static_cast<double>(dimension()) * kLog2Pi +
                 chol_.log_determinant() + maha);
}

double MultivariateNormal::log_likelihood(const Matrix& samples) const {
  BMFUSION_REQUIRE(samples.cols() == dimension(),
                   "mvn log_likelihood dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    acc += log_pdf(samples.row(i));
  }
  return acc;
}

double MultivariateNormal::mahalanobis_squared(const Vector& x) const {
  BMFUSION_REQUIRE(x.size() == dimension(), "mahalanobis size mismatch");
  return chol_.mahalanobis_squared(x - mean_);
}

MultivariateNormal MultivariateNormal::marginal(
    const std::vector<std::size_t>& keep) const {
  BMFUSION_REQUIRE(!keep.empty(), "marginal needs at least one coordinate");
  for (const std::size_t k : keep) {
    BMFUSION_REQUIRE(k < dimension(), "marginal coordinate out of range");
  }
  const std::size_t m = keep.size();
  Vector mu(m);
  Matrix cov(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    mu[i] = mean_[keep[i]];
    for (std::size_t j = 0; j < m; ++j) {
      cov(i, j) = covariance_(keep[i], keep[j]);
    }
  }
  return MultivariateNormal(std::move(mu), std::move(cov));
}

MultivariateNormal MultivariateNormal::conditional(
    const std::vector<std::size_t>& given, const Vector& values) const {
  BMFUSION_REQUIRE(given.size() == values.size(),
                   "conditional values must match given coordinates");
  BMFUSION_REQUIRE(!given.empty() && given.size() < dimension(),
                   "conditional needs a proper non-empty subset");
  std::vector<bool> is_given(dimension(), false);
  for (const std::size_t g : given) {
    BMFUSION_REQUIRE(g < dimension(), "conditional coordinate out of range");
    BMFUSION_REQUIRE(!is_given[g], "conditional coordinate repeated");
    is_given[g] = true;
  }
  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < dimension(); ++i) {
    if (!is_given[i]) rest.push_back(i);
  }
  const std::size_t a = rest.size();
  const std::size_t b = given.size();
  // Partition: Sigma_aa, Sigma_ab, Sigma_bb.
  Matrix s_aa(a, a);
  Matrix s_ab(a, b);
  Matrix s_bb(b, b);
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < a; ++j) s_aa(i, j) = covariance_(rest[i], rest[j]);
    for (std::size_t j = 0; j < b; ++j) s_ab(i, j) = covariance_(rest[i], given[j]);
  }
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t j = 0; j < b; ++j) s_bb(i, j) = covariance_(given[i], given[j]);
  }
  Vector delta(b);
  for (std::size_t i = 0; i < b; ++i) delta[i] = values[i] - mean_[given[i]];

  const linalg::Cholesky bb(s_bb);
  const Vector w = bb.solve(delta);                 // Sigma_bb^{-1} (v - mu_b)
  const Matrix k = bb.solve(s_ab.transposed());     // Sigma_bb^{-1} Sigma_ba
  Vector mu(a);
  for (std::size_t i = 0; i < a; ++i) {
    mu[i] = mean_[rest[i]] + dot(s_ab.row(i), w);
  }
  Matrix cov = s_aa - s_ab * k;
  cov.symmetrize();
  return MultivariateNormal(std::move(mu), std::move(cov));
}

}  // namespace bmfusion::stats
