// Deterministic pseudo-random number generation.
//
// xoshiro256++ with SplitMix64 seeding: small, fast, reproducible across
// platforms (unlike std:: distributions, whose output is implementation-
// defined). Every stochastic component in the project takes one of these by
// reference so experiments are replayable from a single seed.
#pragma once

#include <array>
#include <cstdint>

namespace bmfusion::stats {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state, and handy as
/// a tiny standalone generator for hashing-like uses.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna). Period 2^256 - 1.
class Xoshiro256pp {
 public:
  /// Seeds all 256 bits of state from `seed` via SplitMix64.
  explicit Xoshiro256pp(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Seeds all 256 bits of state from four consecutive draws of `mixer`
  /// (advancing it). Prefer this over funnelling a SplitMix64 draw through
  /// the 64-bit constructor, which collapses the stream back to 64 bits of
  /// entropy and correlates nearby streams.
  explicit Xoshiro256pp(SplitMix64& mixer);

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53-bit resolution.
  double next_double();

  /// Uniform double in [lo, hi).
  double next_uniform(double lo, double hi);

  /// Uniform integer in [0, bound) without modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Equivalent to 2^128 calls to next_u64(); use to derive independent
  /// streams for parallel workers.
  void jump();

  /// Returns a new generator jumped ahead of this one; advances *this too.
  /// Successive calls hand out disjoint streams.
  Xoshiro256pp split();

  /// UniformRandomBitGenerator interface (for std::shuffle).
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace bmfusion::stats
