// Special functions used by the Bayesian machinery.
#pragma once

#include <cstddef>

namespace bmfusion::stats {

/// Natural log of the multivariate gamma function,
/// Gamma_d(a) = pi^{d(d-1)/4} * prod_{j=1..d} Gamma(a + (1-j)/2).
/// Requires a > (d-1)/2 (the Wishart degrees-of-freedom domain).
[[nodiscard]] double log_multivariate_gamma(double a, std::size_t d);

/// Standard normal density phi(x).
[[nodiscard]] double standard_normal_pdf(double x);

/// Standard normal CDF Phi(x) via erfc (accurate in both tails).
[[nodiscard]] double standard_normal_cdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step; |relative error| < 1e-15 over (0, 1)).
/// Requires 0 < p < 1.
[[nodiscard]] double standard_normal_quantile(double p);

/// log(exp(a) + exp(b)) without overflow.
[[nodiscard]] double log_sum_exp(double a, double b);

/// log B(a, b) = lgamma(a) + lgamma(b) - lgamma(a + b); a, b > 0.
[[nodiscard]] double log_beta(double a, double b);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
/// x in [0, 1] (Lentz continued fraction; ~1e-14 accuracy). This is the CDF
/// of the Beta(a, b) distribution.
[[nodiscard]] double regularized_incomplete_beta(double a, double b,
                                                 double x);

/// Quantile of the Beta(a, b) distribution (inverse of I_x) for
/// p in (0, 1), via bisection refined with Newton steps.
[[nodiscard]] double beta_quantile(double a, double b, double p);

}  // namespace bmfusion::stats
