// Wishart distribution Wi_nu(Lambda | T) over precision matrices.
//
// Used to encode (and, in tests, to sample from) the Wishart component of
// the paper's normal-Wishart prior (eq. 12). The parameterization matches
// the paper / Bishop: density ∝ |Lambda|^{(nu-d-1)/2} exp(-tr(T^{-1} Lambda)/2),
// with mean nu*T and mode (nu-d-1)*T for nu > d+1.
#pragma once

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "stats/rng.hpp"

namespace bmfusion::stats {

/// Immutable Wishart distribution with cached factorization of the scale.
class Wishart {
 public:
  /// `dof` must exceed d-1; `scale` must be SPD d x d.
  Wishart(double dof, linalg::Matrix scale);

  [[nodiscard]] std::size_t dimension() const { return scale_.rows(); }
  [[nodiscard]] double dof() const { return dof_; }
  [[nodiscard]] const linalg::Matrix& scale() const { return scale_; }

  /// E[Lambda] = nu * T.
  [[nodiscard]] linalg::Matrix mean() const;

  /// Mode (nu - d - 1) * T; requires nu > d + 1.
  [[nodiscard]] linalg::Matrix mode() const;

  /// One draw via the Bartlett decomposition: Lambda = L A A^T L^T with
  /// chol(T) = L L^T, A lower-triangular with chi-distributed diagonal.
  [[nodiscard]] linalg::Matrix sample(Xoshiro256pp& rng) const;

  /// Log-density at an SPD matrix `lambda`.
  [[nodiscard]] double log_pdf(const linalg::Matrix& lambda) const;

 private:
  double dof_;
  linalg::Matrix scale_;
  linalg::Cholesky scale_chol_;
};

}  // namespace bmfusion::stats
