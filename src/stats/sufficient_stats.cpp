#include "stats/sufficient_stats.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace bmfusion::stats {

SufficientStats::SufficientStats(std::size_t dimension)
    : sum_(dimension), sum_outer_(dimension, dimension) {
  BMFUSION_REQUIRE(dimension >= 1,
                   "sufficient stats need dimension >= 1");
}

SufficientStats SufficientStats::from_samples(const linalg::Matrix& samples) {
  BMFUSION_REQUIRE(samples.rows() >= 1 && samples.cols() >= 1,
                   "sufficient stats need a non-empty sample matrix");
  SufficientStats stats(samples.cols());
  const std::size_t d = samples.cols();
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    for (std::size_t r = 0; r < d; ++r) {
      const double xr = samples(i, r);
      stats.sum_[r] += xr;
      for (std::size_t c = r; c < d; ++c) {
        stats.sum_outer_(r, c) += xr * samples(i, c);
      }
    }
  }
  stats.count_ = samples.rows();
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < r; ++c) {
      stats.sum_outer_(r, c) = stats.sum_outer_(c, r);
    }
  }
  return stats;
}

SufficientStats SufficientStats::from_raw(std::size_t count,
                                          linalg::Vector sum,
                                          linalg::Matrix sum_outer) {
  BMFUSION_REQUIRE(count >= 1, "sufficient stats need count >= 1");
  BMFUSION_REQUIRE(sum.size() >= 1, "sufficient stats need dimension >= 1");
  BMFUSION_REQUIRE(
      sum_outer.rows() == sum.size() && sum_outer.cols() == sum.size(),
      "sufficient stats outer-sum shape must match the sum vector");
  SufficientStats stats;
  stats.count_ = count;
  stats.sum_ = std::move(sum);
  stats.sum_outer_ = std::move(sum_outer);
  return stats;
}

void SufficientStats::add(const linalg::Vector& sample) {
  BMFUSION_REQUIRE(sample.size() == dimension(),
                   "sample dimension mismatch in sufficient stats");
  ++count_;
  for (std::size_t r = 0; r < dimension(); ++r) {
    sum_[r] += sample[r];
    for (std::size_t c = 0; c < dimension(); ++c) {
      sum_outer_(r, c) += sample[r] * sample[c];
    }
  }
}

SufficientStats& SufficientStats::operator+=(const SufficientStats& other) {
  BMFUSION_REQUIRE(other.dimension() == dimension(),
                   "sufficient stats dimension mismatch");
  count_ += other.count_;
  sum_ += other.sum_;
  sum_outer_ += other.sum_outer_;
  return *this;
}

SufficientStats& SufficientStats::operator-=(const SufficientStats& other) {
  BMFUSION_REQUIRE(other.dimension() == dimension(),
                   "sufficient stats dimension mismatch");
  BMFUSION_REQUIRE(count_ >= other.count_,
                   "sufficient stats subtraction needs a subset");
  count_ -= other.count_;
  sum_ -= other.sum_;
  sum_outer_ -= other.sum_outer_;
  return *this;
}

linalg::Vector SufficientStats::mean() const {
  BMFUSION_REQUIRE(count_ >= 1, "sufficient stats mean needs >= 1 sample");
  return sum_ / static_cast<double>(count_);
}

linalg::Matrix SufficientStats::scatter() const {
  BMFUSION_REQUIRE(count_ >= 1,
                   "sufficient stats scatter needs >= 1 sample");
  // S = sum x x^T - n xbar xbar^T.
  const linalg::Vector xbar = mean();
  linalg::Matrix s = sum_outer_;
  const double n = static_cast<double>(count_);
  for (std::size_t r = 0; r < dimension(); ++r) {
    for (std::size_t c = 0; c < dimension(); ++c) {
      s(r, c) -= n * xbar[r] * xbar[c];
    }
  }
  s.symmetrize();
  // A true scatter diagonal is non-negative; catastrophic cancellation on
  // the subtraction path (totals - fold with near-duplicate samples) can
  // leave entries like -1e-18 that spuriously fail SPD checks downstream.
  for (std::size_t r = 0; r < dimension(); ++r) {
    s(r, r) = std::max(s(r, r), 0.0);
  }
  return s;
}

}  // namespace bmfusion::stats
