// Multivariate normal distribution N_d(mu, Sigma).
//
// Provides exactly what the BMF core needs: Cholesky-based sampling for
// synthetic experiments, and the dataset log-likelihood of paper eq. (9)
// used as the cross-validation score.
#pragma once

#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "stats/rng.hpp"

namespace bmfusion::stats {

/// Immutable multivariate normal with a cached Cholesky factor.
class MultivariateNormal {
 public:
  /// Requires a square SPD covariance whose size matches `mean`. Throws
  /// NumericError when the covariance is not positive definite.
  MultivariateNormal(linalg::Vector mean, linalg::Matrix covariance);

  [[nodiscard]] std::size_t dimension() const { return mean_.size(); }
  [[nodiscard]] const linalg::Vector& mean() const { return mean_; }
  [[nodiscard]] const linalg::Matrix& covariance() const {
    return covariance_;
  }

  /// One draw: mu + L z with z ~ N(0, I).
  [[nodiscard]] linalg::Vector sample(Xoshiro256pp& rng) const;

  /// `count` draws as rows of a matrix.
  [[nodiscard]] linalg::Matrix sample_matrix(Xoshiro256pp& rng,
                                             std::size_t count) const;

  /// Log-density at x (paper eq. 8, in logs).
  [[nodiscard]] double log_pdf(const linalg::Vector& x) const;

  /// Sum of log-densities over the rows of `samples` — the log of the paper's
  /// likelihood function eq. (9).
  [[nodiscard]] double log_likelihood(const linalg::Matrix& samples) const;

  /// Squared Mahalanobis distance of x from the mean.
  [[nodiscard]] double mahalanobis_squared(const linalg::Vector& x) const;

  /// Marginal over the given subset of coordinates (order preserved).
  [[nodiscard]] MultivariateNormal marginal(
      const std::vector<std::size_t>& keep) const;

  /// Conditional distribution of the remaining coordinates given that the
  /// coordinates in `given` equal `values`.
  [[nodiscard]] MultivariateNormal conditional(
      const std::vector<std::size_t>& given,
      const linalg::Vector& values) const;

 private:
  linalg::Vector mean_;
  linalg::Matrix covariance_;
  linalg::Cholesky chol_;
};

}  // namespace bmfusion::stats
