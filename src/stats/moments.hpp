// Sample moment computation (batch and streaming).
//
// Sample sets are represented as linalg::Matrix with one row per sample and
// one column per variable, matching the paper's D = [X_1 ... X_n].
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace bmfusion::stats {

/// Sample mean vector (paper eq. 10); `samples` must have at least one row.
[[nodiscard]] linalg::Vector sample_mean(const linalg::Matrix& samples);

/// Scatter matrix S = sum_i (X_i - Xbar)(X_i - Xbar)^T (paper eq. 26).
[[nodiscard]] linalg::Matrix scatter_matrix(const linalg::Matrix& samples);

/// MLE covariance S/n (paper eq. 11); needs n >= 1.
[[nodiscard]] linalg::Matrix sample_covariance_mle(
    const linalg::Matrix& samples);

/// Unbiased covariance S/(n-1); needs n >= 2.
[[nodiscard]] linalg::Matrix sample_covariance_unbiased(
    const linalg::Matrix& samples);

/// Per-column standard deviations from the MLE covariance.
[[nodiscard]] linalg::Vector sample_stddev(const linalg::Matrix& samples);

/// Streaming mean/covariance accumulator (Welford / Chan update). Numerically
/// stable single pass; used by the Monte Carlo engine so the full sample
/// matrix never needs to stay resident for moment queries.
class MomentAccumulator {
 public:
  /// Tracks `dimension` variables.
  explicit MomentAccumulator(std::size_t dimension);

  /// Folds one sample in; size must match dimension().
  void add(const linalg::Vector& sample);

  /// Merges another accumulator over the same dimension (parallel reduce).
  void merge(const MomentAccumulator& other);

  [[nodiscard]] std::size_t dimension() const { return mean_.size(); }
  [[nodiscard]] std::size_t count() const { return count_; }

  /// Running mean; requires count() >= 1.
  [[nodiscard]] linalg::Vector mean() const;

  /// Scatter matrix sum (X_i - mean)(X_i - mean)^T.
  [[nodiscard]] linalg::Matrix scatter() const;

  /// MLE covariance scatter()/n; requires count() >= 1.
  [[nodiscard]] linalg::Matrix covariance_mle() const;

  /// Unbiased covariance scatter()/(n-1); requires count() >= 2.
  [[nodiscard]] linalg::Matrix covariance_unbiased() const;

 private:
  std::size_t count_ = 0;
  linalg::Vector mean_;
  linalg::Matrix m2_;  ///< centered second-moment sum
};

}  // namespace bmfusion::stats
