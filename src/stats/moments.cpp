#include "stats/moments.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace bmfusion::stats {

using linalg::Matrix;
using linalg::Vector;

Vector sample_mean(const Matrix& samples) {
  BMFUSION_REQUIRE(samples.rows() >= 1, "sample_mean needs >= 1 sample");
  const std::size_t n = samples.rows();
  const std::size_t d = samples.cols();
  Vector mean(d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) mean[j] += samples(i, j);
  }
  mean /= static_cast<double>(n);
  return mean;
}

Matrix scatter_matrix(const Matrix& samples) {
  BMFUSION_REQUIRE(samples.rows() >= 1, "scatter_matrix needs >= 1 sample");
  const std::size_t n = samples.rows();
  const std::size_t d = samples.cols();
  const Vector mean = sample_mean(samples);
  Matrix s(d, d);
  Vector centered(d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) centered[j] = samples(i, j) - mean[j];
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = r; c < d; ++c) {
        s(r, c) += centered[r] * centered[c];
      }
    }
  }
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < r; ++c) s(r, c) = s(c, r);
  }
  return s;
}

Matrix sample_covariance_mle(const Matrix& samples) {
  return scatter_matrix(samples) / static_cast<double>(samples.rows());
}

Matrix sample_covariance_unbiased(const Matrix& samples) {
  BMFUSION_REQUIRE(samples.rows() >= 2,
                   "unbiased covariance needs >= 2 samples");
  return scatter_matrix(samples) / static_cast<double>(samples.rows() - 1);
}

Vector sample_stddev(const Matrix& samples) {
  const Matrix cov = sample_covariance_mle(samples);
  Vector sd(cov.rows());
  for (std::size_t i = 0; i < cov.rows(); ++i) sd[i] = std::sqrt(cov(i, i));
  return sd;
}

MomentAccumulator::MomentAccumulator(std::size_t dimension)
    : mean_(dimension), m2_(dimension, dimension) {
  BMFUSION_REQUIRE(dimension >= 1, "accumulator dimension must be positive");
}

void MomentAccumulator::add(const Vector& sample) {
  BMFUSION_REQUIRE(sample.size() == dimension(),
                   "sample dimension mismatch in accumulator");
  ++count_;
  const double inv_n = 1.0 / static_cast<double>(count_);
  Vector delta(dimension());
  for (std::size_t j = 0; j < dimension(); ++j) {
    delta[j] = sample[j] - mean_[j];
    mean_[j] += delta[j] * inv_n;
  }
  // m2 += delta * (x - new_mean)^T; symmetric rank-1-style update.
  for (std::size_t r = 0; r < dimension(); ++r) {
    const double post_r = sample[r] - mean_[r];
    for (std::size_t c = 0; c < dimension(); ++c) {
      m2_(r, c) += delta[c] * post_r;
    }
  }
}

void MomentAccumulator::merge(const MomentAccumulator& other) {
  BMFUSION_REQUIRE(other.dimension() == dimension(),
                   "accumulator dimension mismatch in merge");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. pairwise combination.
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double n = na + nb;
  Vector delta = other.mean_ - mean_;
  for (std::size_t r = 0; r < dimension(); ++r) {
    for (std::size_t c = 0; c < dimension(); ++c) {
      m2_(r, c) += other.m2_(r, c) + delta[r] * delta[c] * na * nb / n;
    }
  }
  for (std::size_t j = 0; j < dimension(); ++j) {
    mean_[j] += delta[j] * nb / n;
  }
  count_ += other.count_;
}

Vector MomentAccumulator::mean() const {
  BMFUSION_REQUIRE(count_ >= 1, "accumulator mean needs >= 1 sample");
  return mean_;
}

Matrix MomentAccumulator::scatter() const {
  Matrix s = m2_;
  s.symmetrize();
  return s;
}

Matrix MomentAccumulator::covariance_mle() const {
  BMFUSION_REQUIRE(count_ >= 1, "accumulator covariance needs >= 1 sample");
  return scatter() / static_cast<double>(count_);
}

Matrix MomentAccumulator::covariance_unbiased() const {
  BMFUSION_REQUIRE(count_ >= 2,
                   "accumulator unbiased covariance needs >= 2 samples");
  return scatter() / static_cast<double>(count_ - 1);
}

}  // namespace bmfusion::stats
