#include "stats/univariate.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace bmfusion::stats {

namespace {
constexpr double kLogSqrt2Pi = 0.918938533204672741780329736405617639;
}

double sample_standard_normal(Xoshiro256pp& rng) {
  // Marsaglia polar method. Discards the second variate for a stateless
  // interface; throughput is irrelevant next to the circuit simulation.
  while (true) {
    const double u = rng.next_uniform(-1.0, 1.0);
    const double v = rng.next_uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double sample_normal(Xoshiro256pp& rng, double mean, double stddev) {
  BMFUSION_REQUIRE(stddev >= 0.0, "normal sampling needs stddev >= 0");
  return mean + stddev * sample_standard_normal(rng);
}

double sample_gamma(Xoshiro256pp& rng, double shape, double scale) {
  BMFUSION_REQUIRE(shape > 0.0 && scale > 0.0,
                   "gamma sampling needs positive shape and scale");
  // Marsaglia & Tsang (2000). For shape < 1 boost via the standard
  // U^(1/shape) trick.
  if (shape < 1.0) {
    const double boost =
        std::pow(rng.next_double() + 1e-300, 1.0 / shape);
    return boost * sample_gamma(rng, shape + 1.0, scale);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = sample_standard_normal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.next_double();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return scale * d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

double sample_chi_squared(Xoshiro256pp& rng, double dof) {
  BMFUSION_REQUIRE(dof > 0.0, "chi-squared sampling needs dof > 0");
  return sample_gamma(rng, 0.5 * dof, 2.0);
}

double sample_exponential(Xoshiro256pp& rng, double rate) {
  BMFUSION_REQUIRE(rate > 0.0, "exponential sampling needs rate > 0");
  return -std::log1p(-rng.next_double()) / rate;
}

double normal_log_pdf(double x, double mean, double stddev) {
  BMFUSION_REQUIRE(stddev > 0.0, "normal log-pdf needs stddev > 0");
  const double z = (x - mean) / stddev;
  return -0.5 * z * z - std::log(stddev) - kLogSqrt2Pi;
}

double gamma_log_pdf(double x, double shape, double scale) {
  BMFUSION_REQUIRE(shape > 0.0 && scale > 0.0,
                   "gamma log-pdf needs positive shape and scale");
  BMFUSION_REQUIRE(x > 0.0, "gamma log-pdf needs x > 0");
  return (shape - 1.0) * std::log(x) - x / scale - std::lgamma(shape) -
         shape * std::log(scale);
}

}  // namespace bmfusion::stats
