#include "stats/rng.hpp"

#include "common/contracts.hpp"

namespace bmfusion::stats {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) {
  SplitMix64 sm(seed);
  *this = Xoshiro256pp(sm);
}

Xoshiro256pp::Xoshiro256pp(SplitMix64& mixer) {
  for (std::uint64_t& s : state_) s = mixer.next();
  // An all-zero state would lock the generator at zero; SplitMix64 cannot
  // produce four consecutive zeros from any seed, but be defensive.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Xoshiro256pp::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256pp::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Xoshiro256pp::next_uniform(double lo, double hi) {
  BMFUSION_REQUIRE(lo < hi, "next_uniform requires lo < hi");
  return lo + (hi - lo) * next_double();
}

std::uint64_t Xoshiro256pp::next_below(std::uint64_t bound) {
  BMFUSION_REQUIRE(bound > 0, "next_below requires a positive bound");
  // Rejection sampling over the largest multiple of bound.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  while (true) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

void Xoshiro256pp::jump() {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if ((word & (1ULL << b)) != 0) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (void)next_u64();
    }
  }
  state_ = acc;
}

Xoshiro256pp Xoshiro256pp::split() {
  Xoshiro256pp child = *this;
  child.jump();
  // Advance the parent past the child's stream start so the two do not
  // overlap (the child owns [jump, 2*jump)).
  jump();
  jump();
  return child;
}

}  // namespace bmfusion::stats
