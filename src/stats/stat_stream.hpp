// Streaming sufficient-statistic accumulator with a deterministic reduction.
//
// SufficientStats combine by floating-point addition, so the *grouping* of
// the adds leaks into the last few ulps of the result: a shard that sums its
// own samples and is then added to another shard does not reproduce the
// single-stream left fold bit for bit. The Monte Carlo driver solved this in
// PR 3 by accumulating fixed 64-sample blocks and combining them with a
// pairwise tree whose shape depends only on the block count. StatStream is
// that idea packaged as a reusable streaming accumulator:
//
//   * samples fill fixed kBlockSamples-sized blocks in arrival order;
//   * completed blocks collapse through a binary-counter structure whose
//     carries reproduce exactly the pairwise tree of
//     circuit::run_monte_carlo_stats (proved equivalent in tests);
//   * totals() folds the counter runs newest-to-oldest, so the full
//     reduction is a pure function of the sample sequence.
//
// Because the tree shape is a pure function of the block layout, a stream
// split across shards reassembles *bitwise identically* whenever the split
// respects the block grid: contiguous shards whose block counts are equal
// powers of two (e.g. 8192 samples over 1/2/8 shards) merge back to the
// exact bits of the single-stream accumulation. Splits that cut blocks or
// misalign runs still merge to the exact same sample *set* (plain
// associative addition), just without the bitwise guarantee — the contract
// the serve layer documents for its combiners.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "stats/sufficient_stats.hpp"

namespace bmfusion::stats {

/// Order-preserving streaming accumulator over SufficientStats blocks.
class StatStream {
 public:
  /// Samples per accumulation block; must match the Monte Carlo driver's
  /// block size so MC shards and estimator streams share one grid.
  static constexpr std::size_t kBlockSamples = 64;

  /// One collapsed run of the reduction tree. `blocks` is the number of
  /// kBlockSamples-sized blocks the run covers (a power of two for regular
  /// runs); 0 marks an irregular run (an absorbed foreign summary or a
  /// closed partial block) that never participates in carries.
  struct Run {
    SufficientStats stats;
    std::uint64_t blocks = 0;
  };

  /// Dimension-less; fixed by the first add/absorb/merge.
  StatStream() = default;
  explicit StatStream(std::size_t dimension);

  /// Folds one sample into the current block (carrying when it fills).
  void add(const linalg::Vector& sample);

  /// Folds every row of `samples` in row order.
  void add_rows(const linalg::Matrix& samples);

  /// Appends a pre-summarized sample set as an irregular unit run. The
  /// current partial block (if any) is closed first so stream order is
  /// preserved. Exact in set semantics; not part of the bitwise block grid.
  void absorb(const SufficientStats& stats);

  /// Appends `other`'s samples after this stream's (concatenation
  /// semantics): other's runs are replayed in order through this counter,
  /// so block-aligned shard splits reassemble bitwise (see file comment).
  /// Either stream's open partial block is closed as an irregular run.
  void merge(const StatStream& other);

  /// Deterministic pairwise reduction of all runs + the open partial block.
  /// Requires a non-empty stream (count() >= 1).
  [[nodiscard]] SufficientStats totals() const;

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::size_t dimension() const { return dimension_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Reduction-tree introspection for the wire format and tests.
  [[nodiscard]] const std::vector<Run>& runs() const { return runs_; }
  [[nodiscard]] const SufficientStats& partial() const { return partial_; }
  [[nodiscard]] std::size_t partial_count() const { return partial_count_; }

  /// Rebuilds a stream from its serialized pieces (wire-format parser).
  /// Shapes must be mutually consistent; throws ContractError otherwise.
  [[nodiscard]] static StatStream from_parts(std::size_t dimension,
                                             std::vector<Run> runs,
                                             SufficientStats partial);

  /// Exact structural equality (same runs, same partial, same counts) —
  /// stronger than totals() equality; used by the determinism tests.
  [[nodiscard]] friend bool operator==(const StatStream& a,
                                       const StatStream& b) {
    if (a.count_ != b.count_ || a.dimension_ != b.dimension_ ||
        a.partial_count_ != b.partial_count_ ||
        a.runs_.size() != b.runs_.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.runs_.size(); ++i) {
      if (a.runs_[i].blocks != b.runs_[i].blocks ||
          !(a.runs_[i].stats == b.runs_[i].stats)) {
        return false;
      }
    }
    return a.partial_count_ == 0 || a.partial_ == b.partial_;
  }

 private:
  void require_dimension(std::size_t dimension);

  /// Pushes a completed run of `blocks` blocks (power of two), carrying
  /// while the newest run has the same width — the binary-counter step.
  void push_regular(SufficientStats stats, std::uint64_t blocks);

  /// Closes the open partial block (if any) as an irregular run.
  void close_partial();

  std::size_t dimension_ = 0;
  std::size_t count_ = 0;
  std::vector<Run> runs_;          ///< oldest first
  SufficientStats partial_;        ///< open block, < kBlockSamples samples
  std::size_t partial_count_ = 0;  ///< samples in the open block
};

}  // namespace bmfusion::stats
