#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/cholesky.hpp"
#include "stats/moments.hpp"

namespace bmfusion::stats {

using linalg::Matrix;
using linalg::Vector;

double quantile(std::vector<double> values, double p) {
  BMFUSION_REQUIRE(!values.empty(), "quantile of empty set");
  BMFUSION_REQUIRE(p >= 0.0 && p <= 1.0, "quantile probability in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double median(std::vector<double> values) {
  return quantile(std::move(values), 0.5);
}

double mean_of(const std::vector<double>& values) {
  BMFUSION_REQUIRE(!values.empty(), "mean of empty set");
  double acc = 0.0;
  for (const double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double stddev_of(const std::vector<double>& values) {
  BMFUSION_REQUIRE(values.size() >= 2, "stddev needs >= 2 values");
  const double m = mean_of(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

std::vector<std::size_t> histogram(const std::vector<double>& values,
                                   double lo, double hi, std::size_t bins) {
  BMFUSION_REQUIRE(bins >= 1, "histogram needs >= 1 bin");
  BMFUSION_REQUIRE(lo < hi, "histogram needs lo < hi");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double v : values) {
    double idx = (v - lo) / width;
    idx = std::clamp(idx, 0.0, static_cast<double>(bins) - 0.5);
    counts[static_cast<std::size_t>(idx)]++;
  }
  return counts;
}

MardiaTest mardia_test(const Matrix& samples) {
  const std::size_t n = samples.rows();
  const std::size_t d = samples.cols();
  BMFUSION_REQUIRE(n > d, "mardia test needs more samples than dimensions");
  const Vector mu = sample_mean(samples);
  const Matrix cov = sample_covariance_mle(samples);
  const linalg::Cholesky chol(cov);  // throws NumericError when singular

  // Whitened samples z_i = L^{-1}(x_i - mu); then
  // b1 = mean_{ij} (z_i . z_j)^3 and b2 = mean_i |z_i|^4.
  Matrix z(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    z.set_row(i, chol.solve_lower(samples.row(i) - mu));
  }
  double b1 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vector zi = z.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double g = dot(zi, z.row(j));
      b1 += g * g * g;
    }
  }
  b1 /= static_cast<double>(n) * static_cast<double>(n);
  double b2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vector zi = z.row(i);
    const double g = dot(zi, zi);
    b2 += g * g;
  }
  b2 /= static_cast<double>(n);

  const double dn = static_cast<double>(d);
  const double nn = static_cast<double>(n);
  MardiaTest result;
  result.skewness = b1;
  result.kurtosis = b2;
  result.skewness_statistic = nn * b1 / 6.0;
  const double expected_kurtosis = dn * (dn + 2.0);
  const double kurtosis_var = 8.0 * dn * (dn + 2.0) / nn;
  result.kurtosis_statistic =
      (b2 - expected_kurtosis) / std::sqrt(kurtosis_var);
  return result;
}

}  // namespace bmfusion::stats
