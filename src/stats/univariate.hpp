// Scalar distribution sampling and densities.
//
// All samplers draw from a caller-supplied Xoshiro256pp so experiments are
// reproducible and parallel streams are explicit.
#pragma once

#include "stats/rng.hpp"

namespace bmfusion::stats {

/// One N(0,1) draw (Marsaglia polar method; exact, no table setup).
[[nodiscard]] double sample_standard_normal(Xoshiro256pp& rng);

/// One N(mean, stddev^2) draw; requires stddev >= 0.
[[nodiscard]] double sample_normal(Xoshiro256pp& rng, double mean,
                                   double stddev);

/// One Gamma(shape, scale) draw (Marsaglia-Tsang squeeze; shape > 0,
/// scale > 0). Mean is shape*scale.
[[nodiscard]] double sample_gamma(Xoshiro256pp& rng, double shape,
                                  double scale);

/// One chi-squared draw with `dof` degrees of freedom (dof > 0).
[[nodiscard]] double sample_chi_squared(Xoshiro256pp& rng, double dof);

/// One Exponential(rate) draw; rate > 0.
[[nodiscard]] double sample_exponential(Xoshiro256pp& rng, double rate);

/// Log-density of N(mean, stddev^2) at x; stddev > 0.
[[nodiscard]] double normal_log_pdf(double x, double mean, double stddev);

/// Log-density of Gamma(shape, scale) at x > 0.
[[nodiscard]] double gamma_log_pdf(double x, double shape, double scale);

}  // namespace bmfusion::stats
