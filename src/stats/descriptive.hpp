// Descriptive statistics and normality diagnostics.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace bmfusion::stats {

/// Linear-interpolation quantile (type-7, the numpy/R default) of `values`
/// at probability p in [0, 1]. `values` need not be sorted; must be
/// non-empty.
[[nodiscard]] double quantile(std::vector<double> values, double p);

/// Median shortcut.
[[nodiscard]] double median(std::vector<double> values);

/// Arithmetic mean; `values` must be non-empty.
[[nodiscard]] double mean_of(const std::vector<double>& values);

/// Unbiased standard deviation; needs >= 2 values.
[[nodiscard]] double stddev_of(const std::vector<double>& values);

/// Equal-width histogram of `values` over [lo, hi] with `bins` bins;
/// out-of-range values clamp to the edge bins.
[[nodiscard]] std::vector<std::size_t> histogram(
    const std::vector<double>& values, double lo, double hi,
    std::size_t bins);

/// Result of Mardia's multivariate normality test.
struct MardiaTest {
  double skewness;            ///< b_{1,d} multivariate skewness statistic
  double kurtosis;            ///< b_{2,d} multivariate kurtosis statistic
  double skewness_statistic;  ///< n*b1/6, ~ chi^2 with d(d+1)(d+2)/6 dof
  double kurtosis_statistic;  ///< normalized kurtosis z-score
};

/// Computes Mardia's skewness/kurtosis for the rows of `samples`. Flags how
/// strained the paper's jointly-Gaussian assumption is for a given dataset.
/// Requires n > d and a non-singular sample covariance.
[[nodiscard]] MardiaTest mardia_test(const linalg::Matrix& samples);

}  // namespace bmfusion::stats
