// Sharded sufficient-statistic wire format.
//
// A StatsShard is the unit of exchange between independent accumulators
// (serve-layer workers, measurement sites, Monte Carlo shards) and a central
// combiner: a shard id for canonical ordering, an optional estimator tag and
// nominal vector (so a shard can carry full estimator stream state), and one
// StatStream per cross-validation fold. Two encodings round-trip losslessly:
//
//   * binary: fixed header (magic "BMFS", version, native-endianness
//     marker), length-delimited payload, FNV-1a 64 trailer checksum. The
//     reader rejects wrong magic/version/endianness, truncated frames and
//     checksum mismatches with typed DataError (the corrupt-frame contract
//     fuzzed in tests/test_streaming.cpp).
//   * JSON: self-describing object (doubles printed at 17 significant
//     digits, so values round-trip exactly) parsed with common/json.hpp.
//
// merge_shards() is the canonical combiner: shards are ordered by shard id
// before fold-wise StatStream concatenation, so the merged result is a pure
// function of the shard *set* — independent of arrival order and of how
// intermediate combiners grouped their inputs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "linalg/vector.hpp"
#include "stats/stat_stream.hpp"

namespace bmfusion::stats {

/// One worker's accumulated statistics, ready for the wire.
struct StatsShard {
  std::uint64_t shard_id = 0;     ///< canonical merge order key
  std::uint64_t population_id = 0;  ///< owning population (0 = sole/default)
  std::string estimator;          ///< optional estimator tag ("mle", "bmf")
  linalg::Vector nominal;         ///< optional late-stage nominal point
  std::vector<StatStream> folds;  ///< >= 1 stream; fold 0 for unfolded stats

  /// Dimension of the first non-empty fold (0 when all folds are empty).
  [[nodiscard]] std::size_t dimension() const;

  /// Total samples across folds.
  [[nodiscard]] std::size_t count() const;
};

/// Binary wire-format version this library writes. Version 2 added the
/// population id (multi-population fusion); version-1 frames still parse
/// and land in population 0.
inline constexpr std::uint16_t kStatsWireVersion = 2;

/// Serializes a shard to the versioned binary frame. Requires >= 1 fold.
[[nodiscard]] std::string serialize_shard(const StatsShard& shard);

/// Parses a binary frame. Throws DataError (with byte-offset context) on
/// bad magic, unsupported version, foreign endianness, truncation, trailing
/// bytes, checksum mismatch or structurally invalid payloads.
[[nodiscard]] StatsShard parse_shard(std::string_view bytes);

/// JSON encoding of the same payload (one object, no trailing newline).
[[nodiscard]] std::string shard_to_json(const StatsShard& shard);

/// Parses the JSON encoding. Throws DataError on malformed documents,
/// wrong "format"/"version" markers, or structurally invalid payloads.
[[nodiscard]] StatsShard shard_from_json(const JsonValue& value);
[[nodiscard]] StatsShard shard_from_json_text(std::string_view text);

/// Canonical order-insensitive combine: sorts by shard id (ties keep input
/// order), checks fold-count/dimension/estimator/nominal/population
/// consistency, and concatenates fold-wise. The result carries the smallest
/// shard id. Requires >= 1 shard.
[[nodiscard]] StatsShard merge_shards(std::vector<StatsShard> shards);

}  // namespace bmfusion::stats
