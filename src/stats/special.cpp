#include "stats/special.hpp"

#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace bmfusion::stats {

namespace {
constexpr double kPi = 3.141592653589793238462643383279502884;
constexpr double kSqrt2 = 1.414213562373095048801688724209698079;
constexpr double kLogSqrt2Pi = 0.918938533204672741780329736405617639;
}  // namespace

double log_multivariate_gamma(double a, std::size_t d) {
  BMFUSION_REQUIRE(d >= 1, "dimension must be positive");
  BMFUSION_REQUIRE(a > 0.5 * (static_cast<double>(d) - 1.0),
                   "multivariate gamma requires a > (d-1)/2");
  double acc = 0.25 * static_cast<double>(d) * static_cast<double>(d - 1) *
               std::log(kPi);
  for (std::size_t j = 1; j <= d; ++j) {
    acc += std::lgamma(a + 0.5 * (1.0 - static_cast<double>(j)));
  }
  return acc;
}

double standard_normal_pdf(double x) {
  return std::exp(-0.5 * x * x - kLogSqrt2Pi);
}

double standard_normal_cdf(double x) {
  return 0.5 * std::erfc(-x / kSqrt2);
}

double standard_normal_quantile(double p) {
  BMFUSION_REQUIRE(p > 0.0 && p < 1.0,
                   "normal quantile requires p in (0, 1)");
  // Acklam's algorithm: rational approximations on the central region and
  // the two tails.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double dd[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                  2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((dd[0] * q + dd[1]) * q + dd[2]) * q + dd[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((dd[0] * q + dd[1]) * q + dd[2]) * q + dd[3]) * q + 1.0);
  }
  // One Halley refinement step drives the error to ~1e-15.
  const double e = standard_normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * kPi) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double log_beta(double a, double b) {
  BMFUSION_REQUIRE(a > 0.0 && b > 0.0, "log_beta needs positive arguments");
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

namespace {

/// Continued-fraction kernel for the incomplete beta (Numerical-Recipes
/// style modified Lentz algorithm). Valid for x < (a+1)/(a+b+2).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-16;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) return h;
  }
  throw NumericError("incomplete beta continued fraction did not converge");
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  BMFUSION_REQUIRE(a > 0.0 && b > 0.0,
                   "incomplete beta needs positive shape parameters");
  BMFUSION_REQUIRE(x >= 0.0 && x <= 1.0, "incomplete beta needs x in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = a * std::log(x) + b * std::log1p(-x) -
                           log_beta(a, b);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(log_front) * betacf(a, b, x) / a;
  }
  return 1.0 - std::exp(log_front) * betacf(b, a, 1.0 - x) / b;
}

double beta_quantile(double a, double b, double p) {
  BMFUSION_REQUIRE(p > 0.0 && p < 1.0, "beta quantile needs p in (0,1)");
  // Bisection to ~1e-8, then Newton polish using the density.
  double lo = 0.0;
  double hi = 1.0;
  double x = a / (a + b);
  for (int i = 0; i < 60; ++i) {
    x = 0.5 * (lo + hi);
    if (regularized_incomplete_beta(a, b, x) < p) {
      lo = x;
    } else {
      hi = x;
    }
  }
  for (int i = 0; i < 3; ++i) {
    if (x <= 0.0 || x >= 1.0) break;
    const double f = regularized_incomplete_beta(a, b, x) - p;
    const double log_pdf = (a - 1.0) * std::log(x) +
                           (b - 1.0) * std::log1p(-x) - log_beta(a, b);
    const double step = f / std::exp(log_pdf);
    const double next = x - step;
    if (next > 0.0 && next < 1.0) x = next;
  }
  return x;
}

double log_sum_exp(double a, double b) {
  const double hi = a > b ? a : b;
  const double lo = a > b ? b : a;
  if (hi == -std::numeric_limits<double>::infinity()) return hi;
  return hi + std::log1p(std::exp(lo - hi));
}

}  // namespace bmfusion::stats
