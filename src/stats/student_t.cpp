#include "stats/student_t.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "stats/univariate.hpp"

namespace bmfusion::stats {

using linalg::Matrix;
using linalg::Vector;

namespace {
constexpr double kLogPi = 1.144729885849400174143427351353058712;
}

MultivariateStudentT::MultivariateStudentT(double dof, Vector location,
                                           Matrix scale)
    : dof_(dof),
      location_(std::move(location)),
      scale_(std::move(scale)),
      chol_(scale_) {
  BMFUSION_REQUIRE(dof_ > 0.0, "student-t needs positive dof");
  BMFUSION_REQUIRE(scale_.rows() == location_.size(),
                   "student-t scale shape must match location");
}

Matrix MultivariateStudentT::covariance() const {
  BMFUSION_REQUIRE(dof_ > 2.0, "covariance defined only for dof > 2");
  return scale_ * (dof_ / (dof_ - 2.0));
}

Vector MultivariateStudentT::sample(Xoshiro256pp& rng) const {
  const std::size_t d = dimension();
  Vector z(d);
  for (std::size_t i = 0; i < d; ++i) z[i] = sample_standard_normal(rng);
  const double u = sample_chi_squared(rng, dof_);
  const double mix = std::sqrt(dof_ / u);
  const Matrix& l = chol_.factor();
  Vector x = location_;
  for (std::size_t r = 0; r < d; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c <= r; ++c) acc += l(r, c) * z[c];
    x[r] += mix * acc;
  }
  return x;
}

double MultivariateStudentT::log_pdf(const Vector& x) const {
  BMFUSION_REQUIRE(x.size() == dimension(), "student-t dimension mismatch");
  const auto d = static_cast<double>(dimension());
  const double maha = chol_.mahalanobis_squared(x - location_);
  return std::lgamma(0.5 * (dof_ + d)) - std::lgamma(0.5 * dof_) -
         0.5 * d * (std::log(dof_) + kLogPi) -
         0.5 * chol_.log_determinant() -
         0.5 * (dof_ + d) * std::log1p(maha / dof_);
}

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  BMFUSION_REQUIRE(!a.empty() && !b.empty(),
                   "ks statistic needs non-empty samples");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double max_gap = 0.0;
  while (ia < a.size() && ib < b.size()) {
    // Advance past the smaller value (both on ties) so the CDFs are
    // compared *between* data points, never mid-tie.
    const double v = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] == v) ++ia;
    while (ib < b.size() && b[ib] == v) ++ib;
    const double fa = static_cast<double>(ia) / static_cast<double>(a.size());
    const double fb = static_cast<double>(ib) / static_cast<double>(b.size());
    max_gap = std::max(max_gap, std::fabs(fa - fb));
  }
  return max_gap;
}

double ks_p_value(double statistic, std::size_t n, std::size_t m) {
  BMFUSION_REQUIRE(statistic >= 0.0 && statistic <= 1.0,
                   "ks statistic must lie in [0, 1]");
  BMFUSION_REQUIRE(n >= 1 && m >= 1, "ks p-value needs sample sizes");
  const double ne = static_cast<double>(n) * static_cast<double>(m) /
                    static_cast<double>(n + m);
  const double lambda =
      (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * statistic;
  // Kolmogorov tail series: 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
  double acc = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    acc += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * acc, 0.0, 1.0);
}

}  // namespace bmfusion::stats
