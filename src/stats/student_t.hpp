// Multivariate Student-t distribution: sampling and goodness-of-fit
// helpers. The posterior predictive of the normal-Wishart model is a
// multivariate t, so this enables predictive-yield Monte Carlo and tests.
#pragma once

#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "stats/rng.hpp"

namespace bmfusion::stats {

/// t_dof(location, scale): scale is the *scale matrix* (the covariance is
/// scale * dof/(dof-2) for dof > 2).
class MultivariateStudentT {
 public:
  /// `dof` > 0; `scale` SPD and matching `location`.
  MultivariateStudentT(double dof, linalg::Vector location,
                       linalg::Matrix scale);

  [[nodiscard]] std::size_t dimension() const { return location_.size(); }
  [[nodiscard]] double dof() const { return dof_; }
  [[nodiscard]] const linalg::Vector& location() const { return location_; }
  [[nodiscard]] const linalg::Matrix& scale() const { return scale_; }

  /// Covariance scale * dof/(dof - 2); requires dof > 2.
  [[nodiscard]] linalg::Matrix covariance() const;

  /// One draw: location + L z sqrt(dof / chi2_dof).
  [[nodiscard]] linalg::Vector sample(Xoshiro256pp& rng) const;

  /// Log-density at x.
  [[nodiscard]] double log_pdf(const linalg::Vector& x) const;

 private:
  double dof_;
  linalg::Vector location_;
  linalg::Matrix scale_;
  linalg::Cholesky chol_;
};

/// Two-sample Kolmogorov-Smirnov statistic between 1-D samples: the
/// maximum distance between their empirical CDFs. Both sets must be
/// non-empty.
[[nodiscard]] double ks_statistic(std::vector<double> a,
                                  std::vector<double> b);

/// Asymptotic p-value for the two-sample KS statistic (Kolmogorov
/// distribution tail; adequate for n, m >= ~25).
[[nodiscard]] double ks_p_value(double statistic, std::size_t n,
                                std::size_t m);

}  // namespace bmfusion::stats
