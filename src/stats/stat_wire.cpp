#include "stats/stat_wire.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/contracts.hpp"

namespace bmfusion::stats {
namespace {

// ---------------------------------------------------------------------------
// Binary frame layout (all integers and doubles in native byte order; the
// endianness marker in the header rejects frames from foreign machines):
//
//   [0]  magic "BMFS" (4 bytes)
//   [4]  u16 version            [6]  u16 flags (reserved, 0)
//   [8]  u32 endian marker 0x01020304
//   [12] u64 shard_id
//   [20] u64 population_id      (version >= 2 only; v1 frames omit it)
//   [..] u32 dimension          (0 when every fold is empty and no nominal)
//   [..] u32 name_len + bytes
//   [..] u32 nominal_len + nominal_len f64
//   [..] u32 fold_count, then per fold:
//          u32 fold_dimension (0 for a never-touched stream)
//          u32 run_count, per run: u64 blocks + stats payload
//          u8  has_partial, stats payload if 1
//        stats payload: u64 count, d f64 sum, d(d+1)/2 f64 upper triangle
//   [..] u64 FNV-1a 64 checksum of every preceding byte
// ---------------------------------------------------------------------------

constexpr char kMagic[4] = {'B', 'M', 'F', 'S'};
constexpr std::uint32_t kEndianMarker = 0x01020304u;
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a64(const char* data, std::size_t size) {
  std::uint64_t hash = kFnvOffset;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

[[noreturn]] void frame_error(std::string what, std::size_t offset,
                              std::string detail) {
  throw DataError(std::move(what), ErrorContext{}
                                       .with_operation("parse_shard")
                                       .with_index(offset)
                                       .with_detail(std::move(detail)));
}

class Writer {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void bytes(std::string_view v) { out_.append(v.data(), v.size()); }

  void stats(const SufficientStats& s) {
    u64(s.count());
    const std::size_t d = s.dimension();
    for (std::size_t r = 0; r < d; ++r) f64(s.sum()[r]);
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = r; c < d; ++c) f64(s.sum_outer()(r, c));
    }
  }

  std::string finish() && {
    const std::uint64_t checksum = fnv1a64(out_.data(), out_.size());
    u64(checksum);
    return std::move(out_);
  }

 private:
  void raw(const void* data, std::size_t size) {
    out_.append(static_cast<const char*>(data), size);
  }
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return scalar<std::uint8_t>("u8"); }
  std::uint16_t u16() { return scalar<std::uint16_t>("u16"); }
  std::uint32_t u32() { return scalar<std::uint32_t>("u32"); }
  std::uint64_t u64() { return scalar<std::uint64_t>("u64"); }
  double f64() { return scalar<double>("f64"); }

  std::string string(std::size_t length) {
    require(length, "string");
    std::string out(bytes_.substr(offset_, length));
    offset_ += length;
    return out;
  }

  SufficientStats stats(std::size_t dimension) {
    const std::uint64_t count = u64();
    if (count == 0) {
      frame_error("stats shard frame has a zero-count stats payload", offset_,
                  "run/partial payloads must summarize >= 1 sample");
    }
    linalg::Vector sum(dimension);
    for (std::size_t r = 0; r < dimension; ++r) sum[r] = f64();
    linalg::Matrix outer(dimension, dimension);
    for (std::size_t r = 0; r < dimension; ++r) {
      for (std::size_t c = r; c < dimension; ++c) {
        const double v = f64();
        outer(r, c) = v;
        outer(c, r) = v;
      }
    }
    return SufficientStats::from_raw(static_cast<std::size_t>(count),
                                     std::move(sum), std::move(outer));
  }

  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] std::size_t remaining() const {
    return bytes_.size() - offset_;
  }
  [[nodiscard]] const char* data() const { return bytes_.data(); }

 private:
  template <typename T>
  T scalar(const char* what) {
    require(sizeof(T), what);
    T value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  void require(std::size_t size, const char* what) {
    if (bytes_.size() - offset_ < size) {
      frame_error("truncated stats shard frame", offset_,
                  std::string("while reading ") + what);
    }
  }

  std::string_view bytes_;
  std::size_t offset_ = 0;
};

/// The one dimension every non-empty fold (and the nominal) must share.
/// Throws DataError on internal disagreement; `source` names the codec path.
std::size_t common_dimension(const StatsShard& shard, const char* source) {
  std::size_t dim = shard.nominal.size();
  for (const StatStream& fold : shard.folds) {
    if (fold.dimension() == 0) continue;
    if (dim == 0) {
      dim = fold.dimension();
    } else if (fold.dimension() != dim) {
      throw DataError("stats shard folds disagree on dimension",
                      ErrorContext{}
                          .with_operation(source)
                          .with_dimension(dim)
                          .with_value(static_cast<double>(fold.dimension())));
    }
  }
  return dim;
}

// --- JSON helpers ----------------------------------------------------------

void append_json_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_json_stats(std::string& out, const SufficientStats& s) {
  out += "{\"count\":";
  out += std::to_string(s.count());
  out += ",\"sum\":[";
  const std::size_t d = s.dimension();
  for (std::size_t r = 0; r < d; ++r) {
    if (r) out += ',';
    append_json_double(out, s.sum()[r]);
  }
  out += "],\"sum_outer_upper\":[";
  bool first = true;
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = r; c < d; ++c) {
      if (!first) out += ',';
      first = false;
      append_json_double(out, s.sum_outer()(r, c));
    }
  }
  out += "]}";
}

[[noreturn]] void json_error(std::string what, std::string detail) {
  throw DataError(std::move(what), ErrorContext{}
                                       .with_operation("shard_from_json")
                                       .with_detail(std::move(detail)));
}

const JsonValue& json_member(const JsonValue& obj, const char* key) {
  const JsonValue* member = obj.find(key);
  if (member == nullptr) {
    json_error("stats shard JSON is missing a required member", key);
  }
  return *member;
}

std::size_t json_size(const JsonValue& value, const char* what) {
  const double v = value.as_number();
  if (v < 0 || v != static_cast<double>(static_cast<std::uint64_t>(v))) {
    json_error("stats shard JSON member is not a non-negative integer", what);
  }
  return static_cast<std::size_t>(v);
}

SufficientStats json_stats(const JsonValue& value, std::size_t dimension) {
  const std::size_t count = json_size(json_member(value, "count"), "count");
  if (count == 0) {
    json_error("stats payload must summarize >= 1 sample", "count");
  }
  const auto& sum_json = json_member(value, "sum").as_array();
  if (sum_json.size() != dimension) {
    json_error("stats payload sum length disagrees with dimension", "sum");
  }
  linalg::Vector sum(dimension);
  for (std::size_t r = 0; r < dimension; ++r) {
    sum[r] = sum_json[r].as_number();
  }
  const auto& upper = json_member(value, "sum_outer_upper").as_array();
  if (upper.size() != dimension * (dimension + 1) / 2) {
    json_error("stats payload upper-triangle length disagrees with dimension",
               "sum_outer_upper");
  }
  linalg::Matrix outer(dimension, dimension);
  std::size_t k = 0;
  for (std::size_t r = 0; r < dimension; ++r) {
    for (std::size_t c = r; c < dimension; ++c, ++k) {
      const double v = upper[k].as_number();
      outer(r, c) = v;
      outer(c, r) = v;
    }
  }
  return SufficientStats::from_raw(count, std::move(sum), std::move(outer));
}

StatStream parse_stream(std::size_t fold_dimension,
                        std::vector<StatStream::Run> runs,
                        SufficientStats partial, const char* source) {
  if (fold_dimension == 0) {
    if (!runs.empty() || partial.count() > 0) {
      throw DataError("stats shard fold has payloads but no dimension",
                      ErrorContext{}.with_operation(source));
    }
    return StatStream{};
  }
  try {
    return StatStream::from_parts(fold_dimension, std::move(runs),
                                  std::move(partial));
  } catch (const ContractError& err) {
    // Structural invariants (power-of-two runs, partial < block size) are
    // contract checks internally but data errors when the bytes came off
    // the wire.
    throw DataError(std::string("invalid stats shard fold: ") + err.what(),
                    ErrorContext{}.with_operation(source));
  }
}

}  // namespace

std::size_t StatsShard::dimension() const {
  for (const StatStream& fold : folds) {
    if (fold.dimension() != 0) return fold.dimension();
  }
  return 0;
}

std::size_t StatsShard::count() const {
  std::size_t total = 0;
  for (const StatStream& fold : folds) total += fold.count();
  return total;
}

std::string serialize_shard(const StatsShard& shard) {
  BMFUSION_REQUIRE(!shard.folds.empty(),
                   "stats shard needs at least one fold stream");
  const std::size_t dim = common_dimension(shard, "serialize_shard");
  BMFUSION_REQUIRE(shard.nominal.size() == 0 || shard.nominal.size() == dim,
                   "stats shard nominal dimension mismatch");

  Writer w;
  w.bytes(std::string_view(kMagic, sizeof kMagic));
  w.u16(kStatsWireVersion);
  w.u16(0);  // flags, reserved
  w.u32(kEndianMarker);
  w.u64(shard.shard_id);
  w.u64(shard.population_id);
  w.u32(static_cast<std::uint32_t>(dim));
  w.u32(static_cast<std::uint32_t>(shard.estimator.size()));
  w.bytes(shard.estimator);
  w.u32(static_cast<std::uint32_t>(shard.nominal.size()));
  for (std::size_t r = 0; r < shard.nominal.size(); ++r) {
    w.f64(shard.nominal[r]);
  }
  w.u32(static_cast<std::uint32_t>(shard.folds.size()));
  for (const StatStream& fold : shard.folds) {
    w.u32(static_cast<std::uint32_t>(fold.dimension()));
    w.u32(static_cast<std::uint32_t>(fold.runs().size()));
    for (const StatStream::Run& run : fold.runs()) {
      w.u64(run.blocks);
      w.stats(run.stats);
    }
    w.u8(fold.partial_count() > 0 ? 1 : 0);
    if (fold.partial_count() > 0) {
      w.stats(fold.partial());
    }
  }
  return std::move(w).finish();
}

StatsShard parse_shard(std::string_view bytes) {
  Reader r(bytes);
  const std::string magic = r.string(sizeof kMagic);
  if (std::memcmp(magic.data(), kMagic, sizeof kMagic) != 0) {
    frame_error("stats shard frame has bad magic", 0,
                "expected \"BMFS\" header");
  }
  const std::uint16_t version = r.u16();
  if (version != 1 && version != kStatsWireVersion) {
    frame_error("unsupported stats shard frame version", 4,
                "this build reads versions 1.." +
                    std::to_string(kStatsWireVersion) + ", frame has " +
                    std::to_string(version));
  }
  (void)r.u16();  // flags, reserved
  const std::uint32_t endian = r.u32();
  if (endian != kEndianMarker) {
    frame_error("stats shard frame written with foreign endianness", 8,
                "endianness marker mismatch");
  }

  StatsShard shard;
  shard.shard_id = r.u64();
  if (version >= 2) {
    shard.population_id = r.u64();
  }
  const std::size_t dim = r.u32();
  const std::size_t name_len = r.u32();
  shard.estimator = r.string(name_len);
  const std::size_t nominal_len = r.u32();
  if (nominal_len != 0) {
    if (nominal_len != dim) {
      frame_error("stats shard nominal length disagrees with dimension",
                  r.offset(), "nominal length " + std::to_string(nominal_len));
    }
    shard.nominal = linalg::Vector(nominal_len);
    for (std::size_t i = 0; i < nominal_len; ++i) {
      shard.nominal[i] = r.f64();
    }
  }

  const std::size_t fold_count = r.u32();
  if (fold_count == 0) {
    frame_error("stats shard frame has zero folds", r.offset(),
                "a shard carries >= 1 fold stream");
  }
  // A fold needs >= 9 bytes (two u32 counts + has_partial byte); bounding
  // fold_count by the remaining bytes stops hostile headers from reserving
  // gigabytes before the truncation check fires.
  if (fold_count > r.remaining()) {
    frame_error("truncated stats shard frame", r.offset(),
                "fold count exceeds remaining payload");
  }
  shard.folds.reserve(fold_count);
  for (std::size_t f = 0; f < fold_count; ++f) {
    const std::size_t fold_dim = r.u32();
    if (fold_dim != 0 && fold_dim != dim) {
      frame_error("stats shard fold dimension disagrees with header",
                  r.offset(), "fold " + std::to_string(f));
    }
    const std::size_t run_count = r.u32();
    if (run_count > r.remaining()) {
      frame_error("truncated stats shard frame", r.offset(),
                  "run count exceeds remaining payload");
    }
    std::vector<StatStream::Run> runs;
    runs.reserve(run_count);
    for (std::size_t i = 0; i < run_count; ++i) {
      StatStream::Run run;
      run.blocks = r.u64();
      run.stats = r.stats(fold_dim);
      runs.push_back(std::move(run));
    }
    SufficientStats partial;
    if (r.u8() != 0) {
      partial = r.stats(fold_dim);
    }
    shard.folds.push_back(
        parse_stream(fold_dim, std::move(runs), std::move(partial),
                     "parse_shard"));
  }

  const std::size_t payload_end = r.offset();
  const std::uint64_t stored = r.u64();
  if (r.remaining() != 0) {
    frame_error("stats shard frame has trailing bytes", r.offset(),
                std::to_string(r.remaining()) + " bytes past the checksum");
  }
  const std::uint64_t computed = fnv1a64(r.data(), payload_end);
  if (stored != computed) {
    frame_error("stats shard frame checksum mismatch", payload_end,
                "frame corrupted in transit");
  }
  return shard;
}

std::string shard_to_json(const StatsShard& shard) {
  BMFUSION_REQUIRE(!shard.folds.empty(),
                   "stats shard needs at least one fold stream");
  const std::size_t dim = common_dimension(shard, "shard_to_json");
  BMFUSION_REQUIRE(shard.nominal.size() == 0 || shard.nominal.size() == dim,
                   "stats shard nominal dimension mismatch");

  std::string out = "{\"format\":\"bmfusion.stats_shard\",\"version\":";
  out += std::to_string(kStatsWireVersion);
  out += ",\"shard_id\":";
  out += std::to_string(shard.shard_id);
  out += ",\"population\":";
  out += std::to_string(shard.population_id);
  out += ",\"estimator\":";
  append_json_string(out, shard.estimator);
  out += ",\"dimension\":";
  out += std::to_string(dim);
  out += ",\"nominal\":[";
  for (std::size_t r = 0; r < shard.nominal.size(); ++r) {
    if (r) out += ',';
    append_json_double(out, shard.nominal[r]);
  }
  out += "],\"folds\":[";
  for (std::size_t f = 0; f < shard.folds.size(); ++f) {
    const StatStream& fold = shard.folds[f];
    if (f) out += ',';
    out += "{\"dimension\":";
    out += std::to_string(fold.dimension());
    out += ",\"runs\":[";
    for (std::size_t i = 0; i < fold.runs().size(); ++i) {
      if (i) out += ',';
      out += "{\"blocks\":";
      out += std::to_string(fold.runs()[i].blocks);
      out += ",\"stats\":";
      append_json_stats(out, fold.runs()[i].stats);
      out += '}';
    }
    out += ']';
    if (fold.partial_count() > 0) {
      out += ",\"partial\":";
      append_json_stats(out, fold.partial());
    }
    out += '}';
  }
  out += "]}";
  return out;
}

StatsShard shard_from_json(const JsonValue& value) {
  if (!value.is_object()) {
    json_error("stats shard JSON must be an object", "document root");
  }
  const std::string format = value.string_or("format", "");
  if (format != "bmfusion.stats_shard") {
    json_error("stats shard JSON has a wrong \"format\" marker", format);
  }
  const std::size_t version =
      json_size(json_member(value, "version"), "version");
  if (version != 1 && version != kStatsWireVersion) {
    json_error("unsupported stats shard JSON version",
               std::to_string(version));
  }

  StatsShard shard;
  shard.shard_id = static_cast<std::uint64_t>(
      json_size(json_member(value, "shard_id"), "shard_id"));
  if (const JsonValue* population = value.find("population")) {
    shard.population_id =
        static_cast<std::uint64_t>(json_size(*population, "population"));
  }
  shard.estimator = value.string_or("estimator", "");
  const std::size_t dim =
      json_size(json_member(value, "dimension"), "dimension");
  const auto& nominal = json_member(value, "nominal").as_array();
  if (!nominal.empty()) {
    if (nominal.size() != dim) {
      json_error("nominal length disagrees with dimension", "nominal");
    }
    shard.nominal = linalg::Vector(nominal.size());
    for (std::size_t i = 0; i < nominal.size(); ++i) {
      shard.nominal[i] = nominal[i].as_number();
    }
  }

  const auto& folds = json_member(value, "folds").as_array();
  if (folds.empty()) {
    json_error("stats shard JSON has zero folds", "folds");
  }
  shard.folds.reserve(folds.size());
  for (const JsonValue& fold_json : folds) {
    const std::size_t fold_dim =
        json_size(json_member(fold_json, "dimension"), "fold dimension");
    if (fold_dim != 0 && fold_dim != dim) {
      json_error("fold dimension disagrees with shard dimension", "folds");
    }
    const auto& runs_json = json_member(fold_json, "runs").as_array();
    std::vector<StatStream::Run> runs;
    runs.reserve(runs_json.size());
    for (const JsonValue& run_json : runs_json) {
      StatStream::Run run;
      run.blocks = static_cast<std::uint64_t>(
          json_size(json_member(run_json, "blocks"), "blocks"));
      run.stats = json_stats(json_member(run_json, "stats"), fold_dim);
      runs.push_back(std::move(run));
    }
    SufficientStats partial;
    if (const JsonValue* partial_json = fold_json.find("partial")) {
      partial = json_stats(*partial_json, fold_dim);
    }
    shard.folds.push_back(parse_stream(fold_dim, std::move(runs),
                                       std::move(partial),
                                       "shard_from_json"));
  }
  return shard;
}

StatsShard shard_from_json_text(std::string_view text) {
  return shard_from_json(parse_json(text));
}

StatsShard merge_shards(std::vector<StatsShard> shards) {
  BMFUSION_REQUIRE(!shards.empty(), "merge_shards needs >= 1 shard");
  std::stable_sort(shards.begin(), shards.end(),
                   [](const StatsShard& a, const StatsShard& b) {
                     return a.shard_id < b.shard_id;
                   });
  StatsShard merged = std::move(shards.front());
  for (std::size_t s = 1; s < shards.size(); ++s) {
    StatsShard& shard = shards[s];
    if (shard.population_id != merged.population_id) {
      throw DataError(
          "stats shards disagree on population id",
          ErrorContext{}
              .with_operation("merge_shards")
              .with_index(s)
              .with_detail(std::to_string(merged.population_id) + " vs " +
                           std::to_string(shard.population_id)));
    }
    if (shard.folds.size() != merged.folds.size()) {
      throw DataError("stats shards disagree on fold count",
                      ErrorContext{}
                          .with_operation("merge_shards")
                          .with_index(s)
                          .with_detail(std::to_string(merged.folds.size()) +
                                       " vs " +
                                       std::to_string(shard.folds.size())));
    }
    if (!shard.estimator.empty()) {
      if (merged.estimator.empty()) {
        merged.estimator = std::move(shard.estimator);
      } else if (shard.estimator != merged.estimator) {
        throw DataError("stats shards disagree on estimator tag",
                        ErrorContext{}
                            .with_operation("merge_shards")
                            .with_index(s)
                            .with_detail(merged.estimator + " vs " +
                                         shard.estimator));
      }
    }
    if (shard.nominal.size() != 0) {
      if (merged.nominal.size() == 0) {
        merged.nominal = std::move(shard.nominal);
      } else if (!(shard.nominal == merged.nominal)) {
        throw DataError("stats shards disagree on the nominal point",
                        ErrorContext{}
                            .with_operation("merge_shards")
                            .with_index(s));
      }
    }
    for (std::size_t f = 0; f < merged.folds.size(); ++f) {
      merged.folds[f].merge(shard.folds[f]);
    }
  }
  return merged;
}

}  // namespace bmfusion::stats
