// bmfusion — multivariate moment estimation via Bayesian model fusion for
// analog/mixed-signal circuits (reproduction of Huang et al., DAC 2015).
//
// Umbrella header: pulls in the full public API. Fine for applications and
// examples; library code should include the specific headers it uses.
//
// Layering (each layer depends only on those above it):
//   telemetry — metrics registry, trace spans, exporters (std-only)
//   common   — contracts, CSV, CLI, tables, parallel_for
//   linalg   — dense/sparse vectors & matrices, factorizations, CG
//   stats    — RNG, distributions, moments, diagnostics
//   dsp      — FFT, windows, single-tone spectral metrics
//   circuit  — netlists, SPICE parser, DC/AC/transient/noise analyses,
//              process variation, the two paper testbenches, Monte Carlo
//   core     — the paper's contribution: normal-Wishart fusion, shift/
//              scaling, hyper-parameter selection, yield, experiments
#pragma once

// telemetry
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

// common
#include "common/cli.hpp"
#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

// linalg
#include "linalg/cholesky.hpp"
#include "linalg/complex_lu.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/ldlt.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/sparse.hpp"
#include "linalg/spd.hpp"
#include "linalg/svd.hpp"
#include "linalg/vector.hpp"

// stats
#include "stats/descriptive.hpp"
#include "stats/moments.hpp"
#include "stats/mvn.hpp"
#include "stats/rng.hpp"
#include "stats/special.hpp"
#include "stats/student_t.hpp"
#include "stats/univariate.hpp"
#include "stats/wishart.hpp"

// dsp
#include "dsp/fft.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/window.hpp"

// circuit
#include "circuit/ac.hpp"
#include "circuit/dataset.hpp"
#include "circuit/dc.hpp"
#include "circuit/flash_adc.hpp"
#include "circuit/lint.hpp"
#include "circuit/montecarlo.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "circuit/noise.hpp"
#include "circuit/opamp.hpp"
#include "circuit/parasitic.hpp"
#include "circuit/process.hpp"
#include "circuit/spice.hpp"
#include "circuit/stage.hpp"
#include "circuit/sweep.hpp"
#include "circuit/transient.hpp"

// core (the paper)
#include "core/bernoulli_bmf.hpp"
#include "core/bmf_estimator.hpp"
#include "core/cross_validation.hpp"
#include "core/experiment.hpp"
#include "core/higher_moments.hpp"
#include "core/mle.hpp"
#include "core/moments.hpp"
#include "core/normal_wishart.hpp"
#include "core/pdf_bmf.hpp"
#include "core/report.hpp"
#include "core/sequential.hpp"
#include "core/serialization.hpp"
#include "core/shift_scale.hpp"
#include "core/univariate_bmf.hpp"
#include "core/yield.hpp"
