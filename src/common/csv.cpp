#include "common/csv.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace bmfusion {

namespace {

double parse_cell(std::string_view cell, std::size_t line_no) {
  const std::string_view trimmed = trim(cell);
  double value = 0.0;
  const auto* begin = trimmed.data();
  const auto* end = trimmed.data() + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    std::ostringstream os;
    os << "csv: non-numeric cell '" << std::string(cell) << "' on line "
       << line_no;
    throw DataError(os.str(), ErrorContext{}
                                  .with_operation("csv-parse")
                                  .with_index(line_no));
  }
  // from_chars accepts "inf"/"nan" spellings; every numeric table in this
  // project is finite by construction, so reject them at load time — a bad
  // cell should die here with its line number, not deep inside a Cholesky.
  if (!std::isfinite(value)) {
    std::ostringstream os;
    os << "csv: non-finite cell '" << std::string(cell) << "' on line "
       << line_no;
    throw DataError(os.str(), ErrorContext{}
                                  .with_operation("csv-parse")
                                  .with_index(line_no)
                                  .with_value(value));
  }
  return value;
}

bool is_comment_or_blank(std::string_view line) {
  const std::string_view t = trim(line);
  return t.empty() || t.front() == '#';
}

}  // namespace

CsvTable read_csv(std::istream& in, bool expect_header) {
  CsvTable table;
  std::string line;
  std::size_t line_no = 0;
  bool header_done = !expect_header;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (is_comment_or_blank(line)) continue;
    if (!header_done) {
      for (const std::string& name : split(line, ',')) {
        table.header.emplace_back(trim(name));
      }
      width = table.header.size();
      header_done = true;
      continue;
    }
    const std::vector<std::string> cells = split(line, ',');
    if (width == 0) {
      width = cells.size();
    } else if (cells.size() != width) {
      std::ostringstream os;
      os << "csv: ragged row on line " << line_no << " (expected " << width
         << " cells, got " << cells.size() << ")";
      throw DataError(os.str());
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (const std::string& cell : cells) {
      row.push_back(parse_cell(cell, line_no));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

CsvTable read_csv_file(const std::string& path, bool expect_header) {
  std::ifstream in(path);
  if (!in) throw DataError("csv: cannot open file for reading: " + path);
  return read_csv(in, expect_header);
}

void write_csv(std::ostream& out, const CsvTable& table) {
  if (!table.header.empty()) {
    out << join(table.header, ",") << '\n';
  }
  for (const std::vector<double>& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << format_double(row[i], 17);
    }
    out << '\n';
  }
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw DataError("csv: cannot open file for writing: " + path);
  write_csv(out, table);
}

}  // namespace bmfusion
