// Aligned console table printer for the figure-reproduction benches.
//
// The benches print the same rows/series the paper's figures report; this
// class keeps that output readable (fixed-width, right-aligned numerics)
// and can also emit the table as CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/csv.hpp"

namespace bmfusion {

/// Builds a rectangular text table column-by-column or row-by-row and prints
/// it with aligned columns. Cells are stored as strings; numeric helpers
/// format through format_double.
class ConsoleTable {
 public:
  /// Creates a table with the given column names.
  explicit ConsoleTable(std::vector<std::string> columns);

  /// Appends a fully formatted row. Must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Appends a numeric row formatted with `digits` significant digits.
  void add_numeric_row(const std::vector<double>& values, int digits = 5);

  /// Number of body rows.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Prints the table with a header rule and aligned columns.
  void print(std::ostream& out) const;

  /// Converts the table body to CSV (numeric cells only; throws DataError if
  /// a cell does not parse as a double).
  [[nodiscard]] CsvTable to_csv() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bmfusion
