// Test-only heap allocation counter.
//
// Linking the `bmfusion_alloc_hook` library (and referencing
// allocation_count(), which forces the linker to pull in its translation
// unit) replaces the global operator new/delete with counting wrappers.
// Benchmarks and tests read the counter before/after a region to assert
// "zero allocations per steady-state sample"; the hook costs one relaxed
// atomic increment per allocation, so it must never be linked into
// production binaries. Without the hook library, this header must not be
// used — allocation_count() would be an undefined symbol.
#pragma once

#include <cstdint>

namespace bmfusion::common {

/// Number of global operator-new calls (any thread) since process start.
[[nodiscard]] std::uint64_t allocation_count() noexcept;

}  // namespace bmfusion::common
