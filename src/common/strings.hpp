// Small string utilities shared across modules (gcc 12 lacks std::format).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bmfusion {

/// Splits `text` on `delim`, keeping empty fields. "a,,b" -> {"a","","b"}.
std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True when `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Formats `value` with `digits` significant digits (shortest of fixed /
/// scientific that fits), suitable for aligned console tables.
std::string format_double(double value, int digits = 6);

/// Joins the elements of `parts` with `sep` between them.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view text);

}  // namespace bmfusion
