// Counting global operator new/delete (see alloc_counter.hpp). Everything
// lives in one translation unit so that referencing allocation_count() pulls
// the operator overrides into the final link.
#include "common/alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

namespace bmfusion::common {

std::uint64_t allocation_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace bmfusion::common

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
