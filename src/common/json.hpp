// Minimal JSON value model and recursive-descent parser.
//
// The doctor tool (src/core/diagnose.*) ingests telemetry snapshots,
// JSON-lines logs and BENCH_*.json histories; all three are produced by this
// repository, so the parser targets standard JSON (RFC 8259) without
// extensions. Malformed input throws DataError with the byte offset of the
// problem, consistent with the CSV reader's error style.
//
// JsonValue is a tagged union over null/bool/number/string/array/object.
// Numbers are stored as double (every producer in this repo emits doubles or
// integers well inside the 2^53 exact range). Object member order is
// preserved so reports render in the order the exporters wrote.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bmfusion {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;
  static JsonValue make_null() { return JsonValue{}; }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(Array items);
  static JsonValue make_object(Object members);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw DataError when the kind does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup (first match). Returns nullptr when absent or when
  /// this value is not an object — callers chain lookups without try/catch.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// find() + typed accessor with a fallback for absent/mismatched members.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document; trailing non-whitespace throws DataError.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Reads and parses a whole file; DataError on I/O or parse failure carries
/// the path in its context.
[[nodiscard]] JsonValue parse_json_file(const std::string& path);

}  // namespace bmfusion
