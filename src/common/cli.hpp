// Tiny command-line flag parser for benches and examples.
//
// Supported syntax: --name=value, --name value, and boolean --name.
// Unknown flags are an error so typos fail loudly instead of silently
// running the default experiment.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bmfusion {

/// Declarative flag set: register flags with defaults, then parse argv.
class CliParser {
 public:
  /// `program_summary` is printed by help().
  explicit CliParser(std::string program_summary);

  /// Registers a flag (without the leading "--"). `help` documents it.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Returns false (after printing help) when --help is given.
  /// Throws DataError on unknown flags or missing values.
  bool parse(int argc, const char* const* argv);

  /// Typed accessors; throw DataError if the value does not convert.
  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] long get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Renders the flag documentation block.
  [[nodiscard]] std::string help() const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  [[nodiscard]] const Flag& find(const std::string& name) const;

  std::string summary_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace bmfusion
