#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace bmfusion {

namespace {

thread_local bool tls_in_region = false;

/// One parallel_for invocation: chunks are claimed from an atomic cursor by
/// the caller and any pool workers that pick up the region's helper jobs.
/// Chunk boundaries depend only on (count, threads), never on scheduling,
/// so every index is executed exactly once regardless of who claims it.
struct Region {
  std::size_t count = 0;
  std::size_t chunk = 0;
  std::size_t chunk_count = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next_chunk{0};
  std::size_t done_chunks = 0;  // guarded by mutex
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;  // guarded by mutex

  void run_chunks() {
    const bool was_in_region = tls_in_region;
    tls_in_region = true;
    std::size_t completed = 0;
    std::exception_ptr error;
    const std::uint64_t busy_start_ns = telemetry::now_ns();
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1);
      if (c >= chunk_count) break;
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(begin + chunk, count);
      try {
        for (std::size_t i = begin; i < end; ++i) (*body)(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
      ++completed;
    }
    tls_in_region = was_in_region;
    if (completed > 0) {
      // Per-participant busy time for this region (caller and each helping
      // worker record once), not per-chunk, to keep the record rate low.
      BMF_HISTOGRAM_RECORD_US(
          "common.pool.busy_us",
          static_cast<double>(telemetry::now_ns() - busy_start_ns) * 1e-3);
    }
    if (completed > 0 || error) {
      const std::lock_guard<std::mutex> lock(mutex);
      if (error && !first_error) first_error = error;
      done_chunks += completed;
      if (done_chunks == chunk_count) done_cv.notify_all();
    }
  }

  void wait_and_rethrow() {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return done_chunks == chunk_count; });
    if (first_error) std::rethrow_exception(first_error);
  }
};

/// Lazily grown pool of parked worker threads shared by every parallel_for.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  std::size_t worker_count() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return workers_.size();
  }

  /// Asks up to `helpers` workers to join `region`, growing the pool when
  /// it has fewer threads than requested (bounded by kMaxWorkers). The
  /// caller must still run the region itself: helpers are best-effort.
  void offer(const std::shared_ptr<Region>& region, std::size_t helpers) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      const std::size_t target =
          std::min<std::size_t>(helpers, kMaxWorkers);
      while (workers_.size() < target) {
        workers_.emplace_back([this] { worker_loop(); });
      }
      for (std::size_t i = 0; i < helpers; ++i) jobs_.push_back(region);
      BMF_GAUGE_SET("common.pool.queue_depth", jobs_.size());
      BMF_GAUGE_SET("common.pool.workers", workers_.size());
    }
    work_cv_.notify_all();
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

 private:
  // Hard ceiling on pool size: parallel_for accepts arbitrary `threads`
  // values (the old implementation spawned that many), but threads beyond
  // this bound cannot pay for themselves on any plausible hardware.
  static constexpr std::size_t kMaxWorkers = 64;

  ThreadPool() = default;

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Region> region;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
        if (stopping_) return;
        region = std::move(jobs_.front());
        jobs_.pop_front();
      }
      region->run_chunks();
    }
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Region>> jobs_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace

std::size_t default_thread_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = default_thread_count();
  threads = std::min(threads, count);
  if (threads <= 1 || count < 2 || tls_in_region) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  BMF_COUNTER_ADD("common.pool.regions", 1);
  auto region = std::make_shared<Region>();
  region->count = count;
  region->chunk = (count + threads - 1) / threads;
  region->chunk_count = (count + region->chunk - 1) / region->chunk;
  region->body = &body;

  ThreadPool::instance().offer(region, region->chunk_count - 1);
  region->run_chunks();
  region->wait_and_rethrow();
}

namespace detail {

std::size_t thread_pool_worker_count() {
  return ThreadPool::instance().worker_count();
}

bool in_parallel_region() { return tls_in_region; }

}  // namespace detail

}  // namespace bmfusion
