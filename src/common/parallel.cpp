#include "common/parallel.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace bmfusion {

std::size_t default_thread_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = default_thread_count();
  threads = std::min(threads, count);
  if (threads <= 1 || count < 2) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::size_t chunk = (count + threads - 1) / threads;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(begin + chunk, count);
    if (begin >= end) break;
    workers.emplace_back([&, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace bmfusion
