#include "common/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"

namespace bmfusion {

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(Array items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(Object members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void throw_kind_mismatch(const char* wanted,
                                      JsonValue::Kind actual) {
  throw DataError(std::string("json value is ") + kind_name(actual) +
                  ", expected " + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw_kind_mismatch("bool", kind_);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw_kind_mismatch("number", kind_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw_kind_mismatch("string", kind_);
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw_kind_mismatch("array", kind_);
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw_kind_mismatch("object", kind_);
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* member = find(key);
  return (member != nullptr && member->is_number()) ? member->number_
                                                    : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* member = find(key);
  return (member != nullptr && member->is_string()) ? member->string_
                                                    : std::move(fallback);
}

namespace {

/// Recursive-descent parser over a string_view; positions are byte offsets
/// reported through DataError contexts on failure.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw DataError("json parse error: " + message,
                    ErrorContext{}.with_operation("parse_json").with_index(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool consume(char expected) {
    if (peek() != expected) return false;
    ++pos_;
    return true;
  }

  void expect(char expected) {
    if (!consume(expected)) {
      fail(std::string("expected '") + expected + "'");
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_whitespace();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (consume(',')) continue;
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array items;
    skip_whitespace();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      if (consume(',')) continue;
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape character");
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    // UTF-8 encode the BMP code point. Surrogate pairs are not combined —
    // the producers in this repo only escape control characters — but each
    // half still round-trips as a replacement-style sequence.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0u | (code >> 6)));
      out.push_back(static_cast<char>(0x80u | (code & 0x3Fu)));
    } else {
      out.push_back(static_cast<char>(0xE0u | (code >> 12)));
      out.push_back(static_cast<char>(0x80u | ((code >> 6) & 0x3Fu)));
      out.push_back(static_cast<char>(0x80u | (code & 0x3Fu)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + token + "'");
    return JsonValue::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw DataError("cannot open json file",
                    ErrorContext{}.with_operation("parse_json_file")
                        .with_detail(path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str());
}

}  // namespace bmfusion
