#include "common/contracts.hpp"

#include <sstream>

namespace bmfusion::detail {

void throw_contract_error(const char* expr, const char* file, int line,
                          const std::string& message) {
  std::ostringstream os;
  os << "contract violation: " << message << " [" << expr << " at " << file
     << ":" << line << "]";
  throw ContractError(os.str());
}

}  // namespace bmfusion::detail
