#include "common/contracts.hpp"

#include <sstream>

#include "log/logger.hpp"

namespace bmfusion {

std::string ErrorContext::summary() const {
  std::ostringstream os;
  bool any = false;
  const auto sep = [&os, &any] {
    os << (any ? " " : " [");
    any = true;
  };
  if (!operation.empty()) {
    sep();
    os << "op=" << operation;
  }
  if (dimension) {
    sep();
    os << "d=" << *dimension;
  }
  if (sample_count) {
    sep();
    os << "n=" << *sample_count;
  }
  if (index) {
    sep();
    os << "index=" << *index;
  }
  if (value) {
    sep();
    os << "value=" << *value;
  }
  if (!detail.empty()) {
    sep();
    os << "detail=" << detail;
  }
  if (any) os << "]";
  return os.str();
}

// All NumericError/DataError constructors notify the logging subsystem so
// an armed flight-recorder dump can replay the events leading up to the
// failure (log/logger.hpp; no-op unless a JSON log file is attached).
NumericError::NumericError(const std::string& what) : std::runtime_error(what) {
  log::detail::notify_error("NumericError", what);
}

NumericError::NumericError(const std::string& what, ErrorContext context)
    : std::runtime_error(detail::format_error(what, context)),
      context_(std::move(context)) {
  log::detail::notify_error("NumericError", std::runtime_error::what());
}

DataError::DataError(const std::string& what) : std::runtime_error(what) {
  log::detail::notify_error("DataError", what);
}

DataError::DataError(const std::string& what, ErrorContext context)
    : std::runtime_error(detail::format_error(what, context)),
      context_(std::move(context)) {
  log::detail::notify_error("DataError", std::runtime_error::what());
}

namespace detail {

std::string format_error(const std::string& message,
                         const ErrorContext& context) {
  return message + context.summary();
}

void throw_contract_error(const char* expr, const char* file, int line,
                          const std::string& message) {
  std::ostringstream os;
  os << "contract violation: " << message << " [" << expr << " at " << file
     << ":" << line << "]";
  throw ContractError(os.str());
}

void throw_config_error(const char* expr, const char* file, int line,
                        const std::string& message) {
  std::ostringstream os;
  os << "invalid configuration: " << message << " [" << expr << " at " << file
     << ":" << line << "]";
  throw ConfigError(os.str());
}

}  // namespace detail

}  // namespace bmfusion
