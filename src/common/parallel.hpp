// Deterministic data-parallel loop helper backed by a persistent thread pool.
//
// parallel_for splits [0, count) into contiguous chunks so a given index is
// always processed exactly once and independent of thread scheduling; the
// result of a parallel loop is therefore identical for 1, 2, or N threads.
// Work items must not throw across threads; exceptions are captured and the
// first one is rethrown on the calling thread.
//
// Unlike the original spawn-per-call implementation, workers are created
// once (lazily, on the first parallel region that wants them) and parked on
// a condition variable between regions, so hot paths that issue many small
// parallel loops (the cross-validation grid, Monte Carlo repetitions) pay
// no thread start-up cost per call. The calling thread always participates
// in chunk execution, so a region completes even when every pool worker is
// busy, and nested parallel_for calls degrade gracefully to inline loops.
#pragma once

#include <cstddef>
#include <functional>

namespace bmfusion {

/// Number of workers parallel_for uses when `threads == 0` (hardware
/// concurrency, at least 1).
std::size_t default_thread_count();

/// Invokes `body(i)` for every i in [0, count). When `threads <= 1` (or count
/// is small) runs inline on the calling thread; otherwise spreads contiguous
/// index ranges across up to `threads` workers of the shared pool. The first
/// exception thrown by any invocation is rethrown on the calling thread after
/// the region completes. Safe to call from inside a parallel_for body (the
/// nested loop runs inline).
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

namespace detail {

/// Pool introspection for tests and diagnostics: number of worker threads
/// currently alive (excludes the calling thread, which always participates
/// in parallel regions).
std::size_t thread_pool_worker_count();

/// True when the current thread is executing inside a parallel_for region
/// (worker or participating caller). Nested parallel loops check this to
/// fall back to inline execution.
bool in_parallel_region();

}  // namespace detail

}  // namespace bmfusion
