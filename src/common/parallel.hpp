// Deterministic data-parallel loop helper.
//
// parallel_for splits [0, count) into contiguous chunks, one per worker, so a
// given index is always processed exactly once and independent of thread
// scheduling. Work items must not throw across threads; exceptions are
// captured and the first one is rethrown on the calling thread.
#pragma once

#include <cstddef>
#include <functional>

namespace bmfusion {

/// Number of workers parallel_for uses when `threads == 0` (hardware
/// concurrency, at least 1).
std::size_t default_thread_count();

/// Invokes `body(i)` for every i in [0, count). When `threads <= 1` (or count
/// is small) runs inline on the calling thread; otherwise spreads contiguous
/// index ranges across `threads` workers. The first exception thrown by any
/// invocation is rethrown on the calling thread after all workers join.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace bmfusion
