// Minimal CSV reader/writer used for dataset persistence and bench output.
//
// The dialect is deliberately simple: comma-separated, no quoting, '#'
// comment lines, optional single header row. All numeric tables in this
// project are plain doubles, which this dialect covers exactly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bmfusion {

/// A parsed CSV table: optional header plus a dense rectangular body.
struct CsvTable {
  std::vector<std::string> header;          ///< empty when no header present
  std::vector<std::vector<double>> rows;    ///< rectangular numeric body

  [[nodiscard]] std::size_t row_count() const { return rows.size(); }
  [[nodiscard]] std::size_t column_count() const {
    return rows.empty() ? header.size() : rows.front().size();
  }
};

/// Parses CSV text from `in`. When `expect_header` is true the first
/// non-comment line is treated as column names. Throws DataError (with the
/// offending line number in its context) on ragged rows and on non-numeric
/// or non-finite ("inf"/"nan") body cells.
CsvTable read_csv(std::istream& in, bool expect_header);

/// Reads a CSV file from disk. Throws DataError when the file cannot be
/// opened.
CsvTable read_csv_file(const std::string& path, bool expect_header);

/// Writes `table` to `out` (header row first when non-empty), 17 significant
/// digits so doubles round-trip exactly.
void write_csv(std::ostream& out, const CsvTable& table);

/// Writes `table` to `path`. Throws DataError when the file cannot be opened.
void write_csv_file(const std::string& path, const CsvTable& table);

}  // namespace bmfusion
