// Contract checking and the typed error taxonomy of the bmfusion library.
//
// All public entry points validate their preconditions with BMFUSION_REQUIRE
// and signal violations by throwing ContractError (derived from
// std::logic_error). Configuration objects validate with
// BMFUSION_CONFIG_REQUIRE, which throws the more specific ConfigError.
// Numeric failures discovered mid-computation (e.g. a Cholesky factorization
// of a non-SPD matrix) throw NumericError instead so callers can distinguish
// caller bugs from data problems, and malformed external data (CSV parse
// failures, bad netlists, non-finite sample cells) throws DataError.
//
// NumericError and DataError optionally carry an ErrorContext describing
// *which input* was degenerate — the operation, problem dimension, sample
// count, offending index and value — so a failure deep inside the CV grid
// sweep reports "map_fuse fold with n=2, d=4, pivot 1 = -3.2e-18" instead of
// a bare "matrix not positive definite".
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>

namespace bmfusion {

/// Structured context attached to NumericError/DataError. Every field is
/// optional; summary() renders only what was set. Built fluently, matching
/// the library's config style:
///   ErrorContext{}.with_operation("cholesky").with_index(j).with_value(piv)
struct ErrorContext {
  std::string operation;                    ///< e.g. "cholesky", "map_fuse"
  std::optional<std::size_t> dimension;     ///< problem/matrix dimension d
  std::optional<std::size_t> sample_count;  ///< samples involved (n)
  std::optional<std::size_t> index;         ///< offending dim/pivot/CSV line
  std::optional<double> value;              ///< offending numeric value
  std::string detail;                       ///< free-form extra information

  ErrorContext& with_operation(std::string op) {
    operation = std::move(op);
    return *this;
  }
  ErrorContext& with_dimension(std::size_t d) {
    dimension = d;
    return *this;
  }
  ErrorContext& with_sample_count(std::size_t n) {
    sample_count = n;
    return *this;
  }
  ErrorContext& with_index(std::size_t i) {
    index = i;
    return *this;
  }
  ErrorContext& with_value(double v) {
    value = v;
    return *this;
  }
  ErrorContext& with_detail(std::string d) {
    detail = std::move(d);
    return *this;
  }

  /// Renders the populated fields as " [op=cholesky d=4 index=1 value=-3e-18]"
  /// (leading space included); empty string when nothing is set.
  [[nodiscard]] std::string summary() const;
};

/// Thrown when a documented precondition of a public API is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a user-assembled configuration object fails its validate()
/// (bad grid shape, folds < 2, inverted ranges). A ContractError subtype:
/// the caller built an impossible request, not the data.
class ConfigError : public ContractError {
 public:
  explicit ConfigError(const std::string& what) : ContractError(what) {}
};

/// Thrown when a computation fails for numeric reasons (singular matrix,
/// non-SPD input, non-convergence) even though the call was well-formed.
/// Carries an optional ErrorContext identifying the degenerate input.
class NumericError : public std::runtime_error {
 public:
  explicit NumericError(const std::string& what);
  NumericError(const std::string& what, ErrorContext context);

  [[nodiscard]] const ErrorContext& context() const { return context_; }

 private:
  ErrorContext context_;
};

/// Thrown on malformed external data (CSV parse failures, bad netlists,
/// non-finite sample cells). Carries an optional ErrorContext (e.g. the
/// offending CSV line number or sample-matrix row).
class DataError : public std::runtime_error {
 public:
  explicit DataError(const std::string& what);
  DataError(const std::string& what, ErrorContext context);

  [[nodiscard]] const ErrorContext& context() const { return context_; }

 private:
  ErrorContext context_;
};

namespace detail {
[[noreturn]] void throw_contract_error(const char* expr, const char* file,
                                       int line, const std::string& message);
[[noreturn]] void throw_config_error(const char* expr, const char* file,
                                     int line, const std::string& message);
/// message + context.summary(), shared by the context-carrying constructors.
[[nodiscard]] std::string format_error(const std::string& message,
                                       const ErrorContext& context);
}  // namespace detail

}  // namespace bmfusion

/// Precondition check: throws bmfusion::ContractError with location info when
/// `cond` is false. `msg` is any expression convertible to std::string.
#define BMFUSION_REQUIRE(cond, msg)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::bmfusion::detail::throw_contract_error(#cond, __FILE__, __LINE__,  \
                                               (msg));                     \
    }                                                                      \
  } while (false)

/// Configuration check: like BMFUSION_REQUIRE but throws ConfigError. Use in
/// config validate() methods so callers can tell a bad config apart from a
/// bad call.
#define BMFUSION_CONFIG_REQUIRE(cond, msg)                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::bmfusion::detail::throw_config_error(#cond, __FILE__, __LINE__,    \
                                             (msg));                       \
    }                                                                      \
  } while (false)
