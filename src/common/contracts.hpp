// Contract checking for the bmfusion library.
//
// All public entry points validate their preconditions with BMFUSION_REQUIRE
// and signal violations by throwing ContractError (derived from
// std::logic_error). Numeric failures discovered mid-computation (e.g. a
// Cholesky factorization of a non-SPD matrix) throw NumericError instead so
// callers can distinguish caller bugs from data problems.
#pragma once

#include <stdexcept>
#include <string>

namespace bmfusion {

/// Thrown when a documented precondition of a public API is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a computation fails for numeric reasons (singular matrix,
/// non-SPD input, non-convergence) even though the call was well-formed.
class NumericError : public std::runtime_error {
 public:
  explicit NumericError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on malformed external data (CSV parse failures, bad netlists).
class DataError : public std::runtime_error {
 public:
  explicit DataError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_contract_error(const char* expr, const char* file,
                                       int line, const std::string& message);
}  // namespace detail

}  // namespace bmfusion

/// Precondition check: throws bmfusion::ContractError with location info when
/// `cond` is false. `msg` is any expression convertible to std::string.
#define BMFUSION_REQUIRE(cond, msg)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::bmfusion::detail::throw_contract_error(#cond, __FILE__, __LINE__,  \
                                               (msg));                     \
    }                                                                      \
  } while (false)
