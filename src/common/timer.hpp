// Wall-clock stopwatch for bench harnesses and progress reporting.
//
// The implementation lives in telemetry/clock.hpp so bench timing and
// telemetry spans/histograms share a single monotonic-clock code path; this
// header keeps the historical bmfusion::Stopwatch spelling.
#pragma once

#include "telemetry/clock.hpp"

namespace bmfusion {

using Stopwatch = telemetry::Stopwatch;

}  // namespace bmfusion
