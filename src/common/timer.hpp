// Wall-clock stopwatch for bench harnesses and progress reporting.
#pragma once

#include <chrono>

namespace bmfusion {

/// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch and returns the elapsed seconds before the reset.
  double restart() {
    const double s = seconds();
    start_ = Clock::now();
    return s;
  }

  /// Elapsed wall-clock seconds since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bmfusion
