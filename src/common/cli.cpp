#include "common/cli.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace bmfusion {

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {}

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  BMFUSION_REQUIRE(!name.empty(), "flag name must be non-empty");
  BMFUSION_REQUIRE(flags_.find(name) == flags_.end(),
                   "flag registered twice: " + name);
  flags_[name] = Flag{default_value, default_value, help};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      throw DataError("cli: positional arguments are not supported: " + arg);
    }
    arg.erase(0, 2);
    std::string name;
    std::string value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      const auto it = flags_.find(name);
      if (it == flags_.end()) throw DataError("cli: unknown flag --" + name);
      const bool is_bool = it->second.default_value == "true" ||
                           it->second.default_value == "false";
      if (is_bool) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          throw DataError("cli: flag --" + name + " needs a value");
        }
        value = argv[++i];
      }
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) throw DataError("cli: unknown flag --" + name);
    it->second.value = value;
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  const auto it = flags_.find(name);
  BMFUSION_REQUIRE(it != flags_.end(), "flag not registered: " + name);
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  return find(name).value;
}

double CliParser::get_double(const std::string& name) const {
  const std::string& v = find(name).value;
  double out = 0.0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    throw DataError("cli: flag --" + name + " expects a number, got '" + v +
                    "'");
  }
  return out;
}

long CliParser::get_int(const std::string& name) const {
  const std::string& v = find(name).value;
  long out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    throw DataError("cli: flag --" + name + " expects an integer, got '" + v +
                    "'");
  }
  return out;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = to_lower(find(name).value);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw DataError("cli: flag --" + name + " expects a boolean, got '" + v +
                  "'");
}

std::string CliParser::help() const {
  std::ostringstream os;
  os << summary_ << "\n\nFlags:\n";
  for (const std::string& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.default_value << ")\n      "
       << f.help << "\n";
  }
  return os.str();
}

}  // namespace bmfusion
