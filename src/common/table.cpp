#include "common/table.hpp"

#include <algorithm>
#include <charconv>
#include <ostream>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace bmfusion {

ConsoleTable::ConsoleTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  BMFUSION_REQUIRE(!columns_.empty(), "table needs at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  BMFUSION_REQUIRE(cells.size() == columns_.size(),
                   "row width must match column count");
  rows_.push_back(std::move(cells));
}

void ConsoleTable::add_numeric_row(const std::vector<double>& values,
                                   int digits) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(format_double(v, digits));
  add_row(std::move(cells));
}

void ConsoleTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << "  ";
      out << std::string(widths[c] - cells[c].size(), ' ') << cells[c];
    }
    out << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out << std::string(total >= 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

CsvTable ConsoleTable::to_csv() const {
  CsvTable table;
  table.header = columns_;
  table.rows.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<double> numeric;
    numeric.reserve(row.size());
    for (const std::string& cell : row) {
      double value = 0.0;
      const auto* begin = cell.data();
      const auto* end = cell.data() + cell.size();
      const auto [ptr, ec] = std::from_chars(begin, end, value);
      if (ec != std::errc{} || ptr != end) {
        throw DataError("table: non-numeric cell '" + cell +
                        "' cannot convert to csv");
      }
      numeric.push_back(value);
    }
    table.rows.push_back(std::move(numeric));
  }
  return table;
}

}  // namespace bmfusion
