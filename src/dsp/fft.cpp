#include "dsp/fft.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace bmfusion::dsp {

namespace {
constexpr double kPi = 3.141592653589793238462643383279502884;
}

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft_inplace(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  BMFUSION_REQUIRE(is_power_of_two(n), "fft length must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterfly stages.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (Complex& c : data) c *= scale;
  }
}

std::vector<Complex> fft(const std::vector<Complex>& data) {
  std::vector<Complex> out = data;
  fft_inplace(out, /*inverse=*/false);
  return out;
}

std::vector<Complex> ifft(const std::vector<Complex>& data) {
  std::vector<Complex> out = data;
  fft_inplace(out, /*inverse=*/true);
  return out;
}

std::vector<Complex> fft_real(const std::vector<double>& data) {
  std::vector<Complex> out;
  fft_real_into(data, out);
  return out;
}

void fft_real_into(const std::vector<double>& data,
                   std::vector<Complex>& out) {
  out.resize(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = Complex(data[i], 0.0);
  }
  fft_inplace(out, /*inverse=*/false);
}

}  // namespace bmfusion::dsp
