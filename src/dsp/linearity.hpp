// ADC static-linearity extraction: DNL and INL.
//
// Two independent routes are provided, and the tests cross-check them on
// the flash-ADC workload:
//   * linearity_from_thresholds — the "truth" when the converter's decision
//     levels are known (simulation);
//   * sine_histogram_linearity — the standard code-density *measurement*:
//     capture a full-scale sine, histogram the output codes, and invert the
//     arcsine amplitude distribution to estimate every decision level.
#pragma once

#include <cstddef>
#include <vector>

namespace bmfusion::dsp {

/// Static linearity of one converter.
struct LinearityResult {
  /// DNL per code transition, in LSB: dnl[k] = (w_k - lsb)/lsb where w_k is
  /// the width of code bin k (first/last bins excluded, as is standard).
  std::vector<double> dnl;
  /// INL per transition, in LSB (endpoint-fit line removed).
  std::vector<double> inl;
  double max_abs_dnl = 0.0;
  double max_abs_inl = 0.0;
};

/// Linearity from known decision thresholds (ascending, size = codes - 1).
/// The endpoint-fit line runs through the first and last threshold.
[[nodiscard]] LinearityResult linearity_from_thresholds(
    const std::vector<double>& thresholds);

/// Code-density test: `codes` is a captured sequence of output codes in
/// [0, code_count); the stimulus must be a sine overdriving both ends of
/// the range slightly (so the end bins clip, as the standard test
/// prescribes). Needs several thousand samples for stable estimates.
[[nodiscard]] LinearityResult sine_histogram_linearity(
    const std::vector<int>& codes, std::size_t code_count);

}  // namespace bmfusion::dsp
