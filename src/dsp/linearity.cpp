#include "dsp/linearity.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace bmfusion::dsp {

namespace {
constexpr double kPi = 3.141592653589793238462643383279502884;

/// DNL/INL from estimated decision levels via an endpoint-fit line.
LinearityResult from_levels(const std::vector<double>& levels) {
  const std::size_t m = levels.size();
  BMFUSION_REQUIRE(m >= 3, "linearity needs at least 3 decision levels");
  for (std::size_t i = 1; i < m; ++i) {
    BMFUSION_REQUIRE(levels[i] >= levels[i - 1],
                     "decision levels must be non-decreasing");
  }
  const double lsb =
      (levels[m - 1] - levels[0]) / static_cast<double>(m - 1);
  BMFUSION_REQUIRE(lsb > 0.0, "degenerate decision-level range");

  LinearityResult out;
  out.dnl.reserve(m - 1);
  out.inl.reserve(m);
  for (std::size_t k = 0; k + 1 < m; ++k) {
    const double dnl = (levels[k + 1] - levels[k]) / lsb - 1.0;
    out.dnl.push_back(dnl);
    out.max_abs_dnl = std::max(out.max_abs_dnl, std::fabs(dnl));
  }
  for (std::size_t k = 0; k < m; ++k) {
    const double ideal = levels[0] + lsb * static_cast<double>(k);
    const double inl = (levels[k] - ideal) / lsb;
    out.inl.push_back(inl);
    out.max_abs_inl = std::max(out.max_abs_inl, std::fabs(inl));
  }
  return out;
}

}  // namespace

LinearityResult linearity_from_thresholds(
    const std::vector<double>& thresholds) {
  return from_levels(thresholds);
}

LinearityResult sine_histogram_linearity(const std::vector<int>& codes,
                                         std::size_t code_count) {
  BMFUSION_REQUIRE(code_count >= 4, "need at least 4 codes");
  BMFUSION_REQUIRE(codes.size() >= 16 * code_count,
                   "histogram test needs >> samples than codes");

  std::vector<double> histogram(code_count, 0.0);
  for (const int code : codes) {
    BMFUSION_REQUIRE(code >= 0 &&
                         static_cast<std::size_t>(code) < code_count,
                     "code out of range");
    histogram[static_cast<std::size_t>(code)] += 1.0;
  }
  BMFUSION_REQUIRE(histogram.front() > 0.0 && histogram.back() > 0.0,
                   "sine must overdrive both end codes (clipped bins)");

  // Cumulative density -> decision levels via the arcsine inversion:
  // T_k = -cos(pi * C_k / N) in normalized full-scale units, where C_k is
  // the cumulative count strictly below code k.
  const double total = static_cast<double>(codes.size());
  std::vector<double> levels;
  levels.reserve(code_count - 1);
  double cumulative = 0.0;
  for (std::size_t k = 0; k + 1 < code_count; ++k) {
    cumulative += histogram[k];
    levels.push_back(-std::cos(kPi * cumulative / total));
  }
  return from_levels(levels);
}

}  // namespace bmfusion::dsp
