// Single-tone spectral analysis: SNR / SINAD / SFDR / THD / ENOB.
//
// Implements standard ADC dynamic testing (IEEE 1241-style): windowed FFT of
// a captured sine record, fundamental and harmonic integration with aliased
// harmonic folding, and noise as the remaining in-band power.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/window.hpp"

namespace bmfusion::dsp {

/// Result of analyzing one single-tone capture.
struct ToneAnalysis {
  std::size_t fundamental_bin = 0;  ///< bin index of the fundamental
  double signal_power = 0.0;        ///< integrated fundamental power
  double noise_power = 0.0;         ///< in-band power excl. signal+harmonics
  double distortion_power = 0.0;    ///< integrated harmonic power
  double worst_spur_power = 0.0;    ///< largest non-fundamental component
  double snr_db = 0.0;              ///< 10log10(Psig/Pnoise)
  double sinad_db = 0.0;            ///< 10log10(Psig/(Pnoise+Pdist))
  double thd_db = 0.0;              ///< 10log10(Pdist/Psig) (negative = good)
  double sfdr_db = 0.0;             ///< 10log10(Psig/Pworst_spur)
  double enob_bits = 0.0;           ///< (SINAD - 1.76)/6.02
};

/// Configuration for tone analysis.
struct ToneAnalysisConfig {
  WindowKind window = WindowKind::kRectangular;  ///< coherent default
  std::size_t harmonic_count = 9;  ///< harmonics 2..harmonic_count+1 counted
};

/// Reusable buffers for the tone-analysis pipeline. One scratch per
/// worker/workspace: every vector grows to the capture size on the first
/// call and is reused verbatim afterwards, so steady-state analysis is
/// allocation-free (the flash-ADC Monte Carlo contract). The window is
/// cached per (kind, length) and regenerated only when either changes.
struct ToneScratch {
  std::vector<double> window;      ///< cached window coefficients
  WindowKind window_kind = WindowKind::kRectangular;
  std::size_t window_n = 0;        ///< 0 = window not generated yet
  std::vector<Complex> spectrum;   ///< complex FFT work buffer
  std::vector<double> power;       ///< one-sided power bins [0, n/2]
  std::vector<bool> claimed;       ///< per-bin claim map for band integration
};

/// Analyzes one real capture. `samples.size()` must be a power of two >= 16.
/// The fundamental is located as the strongest non-DC bin; harmonics fold
/// (alias) back into the first Nyquist zone as a real sampled system would.
[[nodiscard]] ToneAnalysis analyze_tone(const std::vector<double>& samples,
                                        const ToneAnalysisConfig& config = {});

/// Workspace variant of analyze_tone: identical (bitwise) results, but all
/// transient buffers live in `scratch` so repeated calls allocate nothing
/// once the buffers have grown to the capture size.
[[nodiscard]] ToneAnalysis analyze_tone_into(const std::vector<double>& samples,
                                             const ToneAnalysisConfig& config,
                                             ToneScratch& scratch);

/// Picks a coherent tone frequency for an n-point capture at sample rate
/// `fs`: the odd cycle count m closest to `target_ratio * n` (coprime with
/// any power-of-two n), returning m * fs / n.
[[nodiscard]] double coherent_frequency(double fs, std::size_t n,
                                        double target_ratio);

/// One-sided power spectrum (bins 0..n/2) of a windowed real capture,
/// normalized so a full-scale coherent sine reports its power in its bin.
[[nodiscard]] std::vector<double> power_spectrum(
    const std::vector<double>& samples, WindowKind window);

/// Workspace variant of power_spectrum: computes into scratch.power (also
/// returned by reference) using scratch's window cache and FFT buffer.
const std::vector<double>& power_spectrum_into(
    const std::vector<double>& samples, WindowKind window,
    ToneScratch& scratch);

}  // namespace bmfusion::dsp
