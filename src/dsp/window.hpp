// Window functions for spectral analysis.
#pragma once

#include <vector>

namespace bmfusion::dsp {

enum class WindowKind {
  kRectangular,     ///< no taper; exact for coherent sampling
  kHann,            ///< general-purpose 3-bin main lobe
  kBlackmanHarris,  ///< 4-term, -92 dB sidelobes; for non-coherent tones
};

/// Generates an n-point window of the given kind.
[[nodiscard]] std::vector<double> make_window(WindowKind kind, std::size_t n);

/// In-place variant: fills `w` (resized to n) with the window coefficients.
/// Steady-state callers (the flash-ADC Monte Carlo hot path) reuse one
/// buffer across captures so no allocation happens once it has grown.
void make_window_into(WindowKind kind, std::size_t n, std::vector<double>& w);

/// Sum of squared window coefficients (noise power normalization).
[[nodiscard]] double window_noise_gain(const std::vector<double>& window);

/// Coherent (DC) gain: sum of coefficients / n.
[[nodiscard]] double window_coherent_gain(const std::vector<double>& window);

/// Half-width (in bins) over which a windowed tone's energy is gathered when
/// integrating spectral peaks.
[[nodiscard]] std::size_t window_tone_halfwidth(WindowKind kind);

}  // namespace bmfusion::dsp
