#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "dsp/fft.hpp"

namespace bmfusion::dsp {

namespace {

/// Folds harmonic bin index into the first Nyquist zone [0, n/2].
std::size_t fold_bin(std::size_t bin, std::size_t n) {
  bin %= n;
  if (bin > n / 2) bin = n - bin;
  return bin;
}

/// Sums spectrum power over [center - halfwidth, center + halfwidth],
/// clamped to the one-sided range, and zeroes the summed bins in `claimed`.
double claim_band(const std::vector<double>& spectrum,
                  std::vector<bool>& claimed, std::size_t center,
                  std::size_t halfwidth) {
  const std::size_t lo = center > halfwidth ? center - halfwidth : 0;
  const std::size_t hi =
      std::min(center + halfwidth, spectrum.size() - 1);
  double acc = 0.0;
  for (std::size_t b = lo; b <= hi; ++b) {
    if (!claimed[b]) {
      acc += spectrum[b];
      claimed[b] = true;
    }
  }
  return acc;
}

}  // namespace

std::vector<double> power_spectrum(const std::vector<double>& samples,
                                   WindowKind window) {
  ToneScratch scratch;
  return power_spectrum_into(samples, window, scratch);
}

const std::vector<double>& power_spectrum_into(
    const std::vector<double>& samples, WindowKind window,
    ToneScratch& scratch) {
  const std::size_t n = samples.size();
  BMFUSION_REQUIRE(is_power_of_two(n) && n >= 16,
                   "capture length must be a power of two >= 16");
  if (scratch.window_n != n || scratch.window_kind != window) {
    make_window_into(window, n, scratch.window);
    scratch.window_n = n;
    scratch.window_kind = window;
  }
  const std::vector<double>& w = scratch.window;
  scratch.spectrum.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.spectrum[i] = Complex(samples[i] * w[i], 0.0);
  }
  fft_inplace(scratch.spectrum, /*inverse=*/false);

  // One-sided power, normalized by the coherent gain so absolute tone power
  // is window-independent. Interior bins get the x2 one-sided factor.
  const double cg = window_coherent_gain(w);
  const double norm = 1.0 / (cg * cg * static_cast<double>(n) *
                             static_cast<double>(n));
  scratch.power.resize(n / 2 + 1);
  for (std::size_t b = 0; b <= n / 2; ++b) {
    const double mag2 = std::norm(scratch.spectrum[b]);
    const double one_sided = (b == 0 || b == n / 2) ? 1.0 : 2.0;
    scratch.power[b] = one_sided * mag2 * norm;
  }
  return scratch.power;
}

ToneAnalysis analyze_tone(const std::vector<double>& samples,
                          const ToneAnalysisConfig& config) {
  ToneScratch scratch;
  return analyze_tone_into(samples, config, scratch);
}

ToneAnalysis analyze_tone_into(const std::vector<double>& samples,
                               const ToneAnalysisConfig& config,
                               ToneScratch& scratch) {
  const std::size_t n = samples.size();
  const std::vector<double>& spectrum =
      power_spectrum_into(samples, config.window, scratch);
  const std::size_t half = window_tone_halfwidth(config.window);
  const std::size_t dc_guard = half + 1;

  ToneAnalysis result;
  // Fundamental: strongest bin beyond the DC guard band.
  std::size_t fund = dc_guard;
  for (std::size_t b = dc_guard; b < spectrum.size(); ++b) {
    if (spectrum[b] > spectrum[fund]) fund = b;
  }
  result.fundamental_bin = fund;

  std::vector<bool>& claimed = scratch.claimed;
  claimed.assign(spectrum.size(), false);
  // DC leakage is excluded from every power bucket.
  for (std::size_t b = 0; b < dc_guard && b < spectrum.size(); ++b) {
    claimed[b] = true;
  }
  result.signal_power = claim_band(spectrum, claimed, fund, half);

  // Harmonics 2..H+1, folded into the first Nyquist zone. claim_band
  // returns the integrated power of the bins it newly claims, which is
  // both this harmonic's distortion contribution and its spur power.
  double worst_spur = 0.0;
  for (std::size_t h = 2; h <= config.harmonic_count + 1; ++h) {
    const std::size_t bin = fold_bin(fund * h, n);
    if (bin >= spectrum.size()) continue;
    const double band = claim_band(spectrum, claimed, bin, half);
    worst_spur = std::max(worst_spur, band);
    result.distortion_power += band;
  }

  // Noise: all remaining unclaimed bins; also scan them for non-harmonic
  // spurs.
  for (std::size_t b = 0; b < spectrum.size(); ++b) {
    if (!claimed[b]) {
      result.noise_power += spectrum[b];
      worst_spur = std::max(worst_spur, spectrum[b]);
    }
  }
  result.worst_spur_power = worst_spur;

  const double tiny = 1e-300;
  result.snr_db =
      10.0 * std::log10(result.signal_power / (result.noise_power + tiny));
  result.sinad_db =
      10.0 * std::log10(result.signal_power /
                        (result.noise_power + result.distortion_power + tiny));
  result.thd_db =
      10.0 * std::log10((result.distortion_power + tiny) /
                        (result.signal_power + tiny));
  result.sfdr_db =
      10.0 * std::log10(result.signal_power / (worst_spur + tiny));
  result.enob_bits = (result.sinad_db - 1.76) / 6.02;
  return result;
}

double coherent_frequency(double fs, std::size_t n, double target_ratio) {
  BMFUSION_REQUIRE(fs > 0.0, "sample rate must be positive");
  BMFUSION_REQUIRE(is_power_of_two(n), "capture length must be power of two");
  BMFUSION_REQUIRE(target_ratio > 0.0 && target_ratio < 0.5,
                   "target ratio must lie in (0, 0.5)");
  // Nearest odd cycle count: odd m is automatically coprime with 2^k.
  long m = std::lround(target_ratio * static_cast<double>(n));
  if (m % 2 == 0) ++m;
  if (m < 1) m = 1;
  const long max_m = static_cast<long>(n / 2) - 1;
  if (m > max_m) m = (max_m % 2 == 1) ? max_m : max_m - 1;
  return static_cast<double>(m) * fs / static_cast<double>(n);
}

}  // namespace bmfusion::dsp
