// Iterative radix-2 FFT.
//
// The flash-ADC testbench captures power-of-two-length coherent sine records,
// so radix-2 covers every use in this project; the API rejects other lengths
// loudly rather than silently zero-padding.
#pragma once

#include <complex>
#include <vector>

namespace bmfusion::dsp {

using Complex = std::complex<double>;

/// True when n is a power of two (n >= 1).
[[nodiscard]] bool is_power_of_two(std::size_t n);

/// In-place decimation-in-time radix-2 FFT. `data.size()` must be a power of
/// two. `inverse` applies the conjugate transform *and* the 1/N scaling, so
/// fft(fft(x), inverse=true) == x.
void fft_inplace(std::vector<Complex>& data, bool inverse);

/// Out-of-place forward FFT.
[[nodiscard]] std::vector<Complex> fft(const std::vector<Complex>& data);

/// Out-of-place inverse FFT (includes 1/N scaling).
[[nodiscard]] std::vector<Complex> ifft(const std::vector<Complex>& data);

/// Forward FFT of a real signal; returns the full complex spectrum (length
/// n) for simplicity.
[[nodiscard]] std::vector<Complex> fft_real(const std::vector<double>& data);

/// Workspace variant of fft_real: widens `data` into `out` (resized to
/// data.size()) and transforms in place, so a reused `out` makes the call
/// allocation-free in steady state.
void fft_real_into(const std::vector<double>& data, std::vector<Complex>& out);

}  // namespace bmfusion::dsp
