#include "dsp/window.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace bmfusion::dsp {

namespace {
constexpr double kPi = 3.141592653589793238462643383279502884;
}

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  std::vector<double> w;
  make_window_into(kind, n, w);
  return w;
}

void make_window_into(WindowKind kind, std::size_t n, std::vector<double>& w) {
  BMFUSION_REQUIRE(n >= 1, "window length must be positive");
  w.assign(n, 1.0);
  const double denom = static_cast<double>(n);  // periodic windows
  switch (kind) {
    case WindowKind::kRectangular:
      break;
    case WindowKind::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.5 - 0.5 * std::cos(2.0 * kPi * static_cast<double>(i) / denom);
      }
      break;
    case WindowKind::kBlackmanHarris: {
      constexpr double a0 = 0.35875;
      constexpr double a1 = 0.48829;
      constexpr double a2 = 0.14128;
      constexpr double a3 = 0.01168;
      for (std::size_t i = 0; i < n; ++i) {
        const double t = 2.0 * kPi * static_cast<double>(i) / denom;
        w[i] = a0 - a1 * std::cos(t) + a2 * std::cos(2.0 * t) -
               a3 * std::cos(3.0 * t);
      }
      break;
    }
  }
}

double window_noise_gain(const std::vector<double>& window) {
  double acc = 0.0;
  for (const double v : window) acc += v * v;
  return acc;
}

double window_coherent_gain(const std::vector<double>& window) {
  BMFUSION_REQUIRE(!window.empty(), "window must be non-empty");
  double acc = 0.0;
  for (const double v : window) acc += v;
  return acc / static_cast<double>(window.size());
}

std::size_t window_tone_halfwidth(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRectangular:
      return 0;
    case WindowKind::kHann:
      return 2;
    case WindowKind::kBlackmanHarris:
      return 4;
  }
  return 0;
}

}  // namespace bmfusion::dsp
