#include "core/report.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "common/contracts.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/higher_moments.hpp"
#include "core/normal_wishart.hpp"
#include "linalg/spd.hpp"
#include "stats/rng.hpp"
#include "stats/special.hpp"

namespace bmfusion::core {

void write_validation_report(std::ostream& out, const ReportInput& input) {
  const std::size_t d = input.result.moments.dimension();
  BMFUSION_REQUIRE(input.metric_names.size() == d,
                   "metric names must match the estimate dimension");
  BMFUSION_REQUIRE(input.late_samples.cols() == d,
                   "late samples must match the estimate dimension");
  const std::size_t n = input.late_samples.rows();

  out << "=== BMF validation report ===\n";
  out << "late-stage samples fused : " << n << '\n';
  if (input.early_sample_count > 0) {
    out << "early-stage population   : " << input.early_sample_count << '\n';
  }
  out << "selected hyper-parameters: kappa0 = "
      << format_double(input.result.kappa0, 4)
      << ", nu0 = " << format_double(input.result.nu0, 5) << '\n';
  const double n_d = static_cast<double>(n);
  const bool trust_mean = input.result.kappa0 > 10.0 * std::max(1.0, n_d);
  const bool trust_cov = input.result.nu0 > 10.0 * std::max(1.0, n_d);
  out << "interpretation           : early-stage mean "
      << (trust_mean ? "dominates" : "advises") << ", covariance "
      << (trust_cov ? "dominates" : "advises")
      << " (relative to the " << n << " fused samples)\n\n";

  // Per-metric table with 95% credible intervals for the mean from the
  // posterior marginal-t (reconstructed at the selected hyper-parameters in
  // scaled space would be exact; here the plug-in t-interval
  // mean +/- 1.96 sd/sqrt(kappa_n) is reported, which is what the marginal
  // collapses to for the moderate dof used in practice).
  const double kappa_n = input.result.kappa0 + static_cast<double>(n);
  ConsoleTable table({"metric", "mean", "ci95_low", "ci95_high", "stddev"});
  for (std::size_t i = 0; i < d; ++i) {
    const double mean = input.result.moments.mean[i];
    const double sd = std::sqrt(input.result.moments.covariance(i, i));
    const double half = 1.959963984540054 * sd / std::sqrt(kappa_n);
    table.add_row({input.metric_names[i], format_double(mean, 5),
                   format_double(mean - half, 5),
                   format_double(mean + half, 5), format_double(sd, 4)});
  }
  out << "Fused moments (original units):\n";
  table.print(out);

  out << "\nCorrelation matrix:\n";
  const linalg::Matrix corr =
      linalg::covariance_to_correlation(input.result.moments.covariance);
  ConsoleTable corr_table([&] {
    std::vector<std::string> cols{"metric"};
    for (const std::string& name : input.metric_names) cols.push_back(name);
    return cols;
  }());
  for (std::size_t i = 0; i < d; ++i) {
    std::vector<std::string> row{input.metric_names[i]};
    for (std::size_t j = 0; j < d; ++j) {
      row.push_back(format_double(corr(i, j), 3));
    }
    corr_table.add_row(std::move(row));
  }
  corr_table.print(out);

  if (n >= 4) {
    out << "\nGaussianity diagnostics (late samples, per metric):\n";
    const HigherMoments hm = estimate_higher_moments(input.late_samples);
    ConsoleTable diag({"metric", "skewness", "excess_kurtosis"});
    for (std::size_t i = 0; i < d; ++i) {
      diag.add_row({input.metric_names[i], format_double(hm.skewness[i], 3),
                    format_double(hm.excess_kurtosis[i], 3)});
    }
    diag.print(out);
  }

  if (input.specs.has_value()) {
    out << "\nParametric yield over the spec box:\n";
    stats::Xoshiro256pp rng(input.yield_seed);
    const YieldEstimate y =
        estimate_yield(input.result.moments, *input.specs, rng, 200000);
    out << "  yield = " << format_double(y.yield, 5) << " +/- "
        << format_double(y.standard_error, 3) << " (plug-in Gaussian MC)\n";
  }
}

std::string validation_report(const ReportInput& input) {
  std::ostringstream os;
  write_validation_report(os, input);
  return os.str();
}

}  // namespace bmfusion::core
