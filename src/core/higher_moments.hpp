// Higher-order moment estimation and non-Gaussian quantile correction.
//
// The paper restricts itself to the first two moments and names
// "estimating and matching the high-order moments" as future work
// (Section 1). This module provides that extension's building blocks:
// per-metric standardized skewness / excess kurtosis, and Cornish-Fisher
// quantiles that correct Gaussian spec margins for the measured asymmetry
// — e.g. for the mildly non-Gaussian ADC spectral metrics.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace bmfusion::core {

/// Sample higher moments of each column of a sample matrix.
struct HigherMoments {
  linalg::Vector skewness;         ///< standardized third central moment
  linalg::Vector excess_kurtosis;  ///< standardized fourth minus 3
};

/// Estimates per-metric skewness and excess kurtosis from the rows of
/// `samples` (biased, moment-definition estimators; needs >= 4 samples and
/// non-degenerate columns).
[[nodiscard]] HigherMoments estimate_higher_moments(
    const linalg::Matrix& samples);

/// Cornish-Fisher expansion: the p-quantile of a distribution with the
/// given mean/stddev/skewness/excess-kurtosis. With skew = kurt = 0 it
/// reduces to the Gaussian quantile. Requires stddev > 0 and p in (0, 1).
[[nodiscard]] double cornish_fisher_quantile(double mean, double stddev,
                                             double skewness,
                                             double excess_kurtosis,
                                             double p);

/// One-sided yield P(x <= upper_spec) under the Cornish-Fisher model:
/// inverts the quantile correction to map the spec back to a Gaussian
/// z-value (monotone bisection), then applies Phi.
[[nodiscard]] double cornish_fisher_yield(double mean, double stddev,
                                          double skewness,
                                          double excess_kurtosis,
                                          double upper_spec);

}  // namespace bmfusion::core
