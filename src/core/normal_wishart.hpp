// Normal-Wishart distribution over (mu, Lambda = Sigma^-1) — the conjugate
// prior of the multivariate Gaussian, and the vehicle of the paper's
// Bayesian model fusion (Section 3.2-3.3).
//
// Parameterization follows the paper (eq. 12):
//   p(mu, Lambda) = N(mu | mu0, (kappa0 Lambda)^-1) * Wi_{nu0}(Lambda | T0)
// with mode mu_M = mu0, Lambda_M = (nu0 - d) T0 (eqs. 15-16).
//
// The early-stage anchoring of eqs. 17-20 sets mu0 = mu_E and
// T0 = Lambda_E / (nu0 - d) so the prior peaks exactly at the early-stage
// moments. Observing n samples yields another normal-Wishart with updated
// hyper-parameters (eqs. 24-28), whose mode gives the MAP moment estimates
// (eqs. 29-32).
#pragma once

#include <utility>

#include "core/moments.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "stats/rng.hpp"

namespace bmfusion::core {

/// Immutable normal-Wishart distribution.
class NormalWishart {
 public:
  /// Direct construction from hyper-parameters. Requirements: kappa0 > 0,
  /// nu0 > d - 1 (Wishart domain), t0 SPD d x d matching mu0.
  NormalWishart(linalg::Vector mu0, double kappa0, double nu0,
                linalg::Matrix t0);

  /// The paper's prior (eqs. 19-21): peaks at the early-stage moments.
  /// Requires nu0 > d (so T0 = Lambda_E/(nu0-d) is positive definite) and
  /// kappa0 > 0. `early` must validate.
  [[nodiscard]] static NormalWishart from_early_stage(
      const GaussianMoments& early, double kappa0, double nu0);

  [[nodiscard]] std::size_t dimension() const { return mu0_.size(); }
  [[nodiscard]] const linalg::Vector& mu0() const { return mu0_; }
  [[nodiscard]] double kappa0() const { return kappa0_; }
  [[nodiscard]] double nu0() const { return nu0_; }
  [[nodiscard]] const linalg::Matrix& t0() const { return t0_; }

  /// Mode of the distribution (eqs. 15-16): (mu_M, Lambda_M). Requires
  /// nu0 > d. The second element is the *precision* mode.
  [[nodiscard]] std::pair<linalg::Vector, linalg::Matrix> mode() const;

  /// The mode expressed as moments (mean, covariance = Lambda_M^-1).
  [[nodiscard]] GaussianMoments mode_moments() const;

  /// Posterior after observing the rows of `samples` (eqs. 24-28). The
  /// result is again normal-Wishart (conjugacy).
  [[nodiscard]] NormalWishart posterior(const linalg::Matrix& samples) const;

  /// Same conjugate update fed from precomputed sufficient statistics
  /// (count, sum, sum of outer products) instead of raw samples. The update
  /// equations only touch the data through (n, Xbar, S), so this costs
  /// O(d^3) however many samples the statistics summarize.
  [[nodiscard]] NormalWishart posterior(const SufficientStats& stats) const;

  /// MAP moment estimate: the mode of *this* distribution interpreted per
  /// eqs. 29-32 (use on a posterior to get mu_MAP / Sigma_MAP).
  [[nodiscard]] GaussianMoments map_estimate() const { return mode_moments(); }

  /// Log-density at (mu, lambda) including the normalization Z0 (eq. 13).
  [[nodiscard]] double log_pdf(const linalg::Vector& mu,
                               const linalg::Matrix& lambda) const;

  /// Log normalization constant Z of this distribution (paper eq. 13, in
  /// logs): log Z = (d/2)(log 2pi - log kappa) + (nu/2) log|T| +
  /// (nu d/2) log 2 + log Gamma_d(nu/2).
  [[nodiscard]] double log_normalizer() const;

  /// Closed-form log marginal likelihood (model evidence) of the samples
  /// under this prior:  log p(D) = log Z_posterior - log Z_prior
  /// - (n d / 2) log(2 pi). Enables empirical-Bayes hyper-parameter
  /// selection as an alternative to the paper's cross validation.
  [[nodiscard]] double log_marginal_likelihood(
      const linalg::Matrix& samples) const;

  /// Evidence from sufficient statistics; same value as the matrix overload
  /// up to floating-point rounding, at O(d^3) instead of O(n d^2).
  [[nodiscard]] double log_marginal_likelihood(
      const SufficientStats& stats) const;

  /// One joint draw: Lambda ~ Wi_{nu0}(T0), mu ~ N(mu0, (kappa0 Lambda)^-1).
  [[nodiscard]] std::pair<linalg::Vector, linalg::Matrix> sample(
      stats::Xoshiro256pp& rng) const;

  /// Parameters of the posterior-predictive multivariate Student-t
  /// distribution for the *next* observation:
  ///   X ~ t_{nu0-d+1}(mu0, T0^-1 (kappa0+1) / (kappa0 (nu0-d+1))).
  /// (A library extension beyond the paper; enables predictive yield.)
  struct StudentT {
    double dof = 0.0;
    linalg::Vector location;
    linalg::Matrix scale;  ///< scale matrix (not covariance)
  };
  [[nodiscard]] StudentT posterior_predictive() const;

  /// Marginal distribution of the *mean parameter* mu under this
  /// distribution: mu ~ t_{nu0-d+1}(mu0, T0^-1 / (kappa0 (nu0-d+1))).
  /// On a posterior this yields credible regions for the estimated mean.
  [[nodiscard]] StudentT marginal_mean() const;

  /// Log-density of a multivariate Student-t at x.
  [[nodiscard]] static double student_t_log_pdf(const StudentT& t,
                                                const linalg::Vector& x);

 private:
  /// Shared conjugate update (eqs. 24-28) from the sample count, sample
  /// mean and scatter matrix; both posterior() overloads delegate here.
  [[nodiscard]] NormalWishart posterior_from(double n,
                                             const linalg::Vector& xbar,
                                             const linalg::Matrix& s) const;

  linalg::Vector mu0_;
  double kappa0_;
  double nu0_;
  linalg::Matrix t0_;
};

/// MAP moment estimate fused directly from early-stage moments and late-stage
/// sufficient statistics — the composition
///   from_early_stage(early, kappa0, nu0).posterior(stats).map_estimate()
/// collapsed algebraically so that no Cholesky factorization is needed:
///   T0^-1      = (nu0 - d) Sigma_E                      (from eq. 20)
///   Sigma_MAP  = T_n^-1 / (nu0 + n - d)                 (from eqs. 28, 32)
/// This is the cross-validation hot path: one call per (grid point, fold).
/// `early` must validate; requires nu0 > d and stats.count() >= 1.
[[nodiscard]] GaussianMoments map_fuse(const GaussianMoments& early,
                                       const SufficientStats& stats,
                                       double kappa0, double nu0);

}  // namespace bmfusion::core
