#include "core/univariate_bmf.hpp"

#include "common/contracts.hpp"
#include "core/normal_wishart.hpp"

namespace bmfusion::core {

using linalg::Matrix;
using linalg::Vector;

GaussianMoments UnivariateBmfResult::as_moments() const {
  GaussianMoments moments;
  moments.mean = mean;
  moments.covariance = Matrix::diagonal_matrix(variance);
  return moments;
}

namespace {

/// 1-D projection of d-dimensional sufficient statistics onto metric j:
/// the stats the same samples would have produced had only column j been
/// recorded (exact — sums are componentwise).
SufficientStats project_stats_1d(const SufficientStats& stats,
                                 std::size_t j) {
  return SufficientStats::from_raw(
      stats.count(), Vector{stats.sum()[j]},
      Matrix{{stats.sum_outer()(j, j)}});
}

}  // namespace

EstimateResult UnivariateBmfEstimator::do_estimate_stats(
    const SufficientStats& stats, const Vector& nominal) const {
  (void)nominal;  // operates in the already-normalized space
  return do_snapshot({stats}, nominal);
}

EstimateResult UnivariateBmfEstimator::do_snapshot(
    const std::vector<SufficientStats>& fold_totals,
    const Vector& nominal) const {
  (void)nominal;  // operates in the already-normalized space
  const std::size_t d = early_scaled_.dimension();
  std::size_t total_count = 0;
  std::size_t nonempty_folds = 0;
  for (const SufficientStats& fold : fold_totals) {
    if (fold.count() == 0) continue;
    BMFUSION_REQUIRE(fold.dimension() == d,
                     "fold statistics must match the early-stage dimension");
    total_count += fold.count();
    ++nonempty_folds;
  }
  BMFUSION_REQUIRE(total_count >= 1,
                   "univariate bmf snapshot needs >= 1 sample");
  const bool can_fold = nonempty_folds >= 2 && total_count >= 2;

  Vector mean(d);
  Vector variance(d);
  for (std::size_t j = 0; j < d; ++j) {
    GaussianMoments early_1d;
    early_1d.mean = Vector{early_scaled_.mean[j]};
    early_1d.covariance = Matrix{{early_scaled_.covariance(j, j)}};

    std::vector<SufficientStats> folds_1d;
    folds_1d.reserve(fold_totals.size());
    SufficientStats totals_1d(1);
    for (const SufficientStats& fold : fold_totals) {
      if (fold.count() == 0) {
        folds_1d.emplace_back(1);
        continue;
      }
      folds_1d.push_back(project_stats_1d(fold, j));
      totals_1d += folds_1d.back();
    }
    const CrossValidationResult sel =
        can_fold ? select_hyperparameters(early_1d, folds_1d, cv_)
                 : select_hyperparameters_evidence(early_1d, totals_1d, cv_);
    const NormalWishart prior =
        NormalWishart::from_early_stage(early_1d, sel.kappa0, sel.nu0);
    const GaussianMoments map = prior.posterior(totals_1d).map_estimate();
    mean[j] = map.mean[0];
    variance[j] = map.covariance(0, 0);
  }

  EstimateResult result;
  result.moments.mean = mean;
  result.moments.covariance = Matrix::diagonal_matrix(variance);
  result.scaled_moments = result.moments;
  return result;
}

UnivariateBmfResult estimate_univariate_bmf(
    const GaussianMoments& early_scaled, const Matrix& late_scaled,
    const CrossValidationConfig& config) {
  early_scaled.validate();
  BMFUSION_REQUIRE(late_scaled.cols() == early_scaled.dimension(),
                   "late samples must match the early-stage dimension");
  BMFUSION_REQUIRE(late_scaled.rows() >= 2,
                   "univariate bmf needs >= 2 samples");
  const std::size_t d = early_scaled.dimension();

  UnivariateBmfResult result;
  result.mean = Vector(d);
  result.variance = Vector(d);
  result.kappa0.resize(d);
  result.nu0.resize(d);

  for (std::size_t j = 0; j < d; ++j) {
    // 1-D projection of the problem: this metric's early moments + samples.
    GaussianMoments early_1d;
    early_1d.mean = Vector{early_scaled.mean[j]};
    early_1d.covariance = Matrix{{early_scaled.covariance(j, j)}};
    Matrix samples_1d(late_scaled.rows(), 1);
    for (std::size_t i = 0; i < late_scaled.rows(); ++i) {
      samples_1d(i, 0) = late_scaled(i, j);
    }
    const CrossValidationResult sel =
        select_hyperparameters(early_1d, samples_1d, config);
    const NormalWishart prior =
        NormalWishart::from_early_stage(early_1d, sel.kappa0, sel.nu0);
    const GaussianMoments map = prior.posterior(samples_1d).map_estimate();
    result.mean[j] = map.mean[0];
    result.variance[j] = map.covariance(0, 0);
    result.kappa0[j] = sel.kappa0;
    result.nu0[j] = sel.nu0;
  }
  return result;
}

}  // namespace bmfusion::core
