#include "core/univariate_bmf.hpp"

#include "common/contracts.hpp"
#include "core/normal_wishart.hpp"

namespace bmfusion::core {

using linalg::Matrix;
using linalg::Vector;

GaussianMoments UnivariateBmfResult::as_moments() const {
  GaussianMoments moments;
  moments.mean = mean;
  moments.covariance = Matrix::diagonal_matrix(variance);
  return moments;
}

UnivariateBmfResult estimate_univariate_bmf(
    const GaussianMoments& early_scaled, const Matrix& late_scaled,
    const CrossValidationConfig& config) {
  early_scaled.validate();
  BMFUSION_REQUIRE(late_scaled.cols() == early_scaled.dimension(),
                   "late samples must match the early-stage dimension");
  BMFUSION_REQUIRE(late_scaled.rows() >= 2,
                   "univariate bmf needs >= 2 samples");
  const std::size_t d = early_scaled.dimension();

  UnivariateBmfResult result;
  result.mean = Vector(d);
  result.variance = Vector(d);
  result.kappa0.resize(d);
  result.nu0.resize(d);

  for (std::size_t j = 0; j < d; ++j) {
    // 1-D projection of the problem: this metric's early moments + samples.
    GaussianMoments early_1d;
    early_1d.mean = Vector{early_scaled.mean[j]};
    early_1d.covariance = Matrix{{early_scaled.covariance(j, j)}};
    Matrix samples_1d(late_scaled.rows(), 1);
    for (std::size_t i = 0; i < late_scaled.rows(); ++i) {
      samples_1d(i, 0) = late_scaled(i, j);
    }
    const CrossValidationResult sel =
        select_hyperparameters(early_1d, samples_1d, config);
    const NormalWishart prior =
        NormalWishart::from_early_stage(early_1d, sel.kappa0, sel.nu0);
    const GaussianMoments map = prior.posterior(samples_1d).map_estimate();
    result.mean[j] = map.mean[0];
    result.variance[j] = map.covariance(0, 0);
    result.kappa0[j] = sel.kappa0;
    result.nu0[j] = sel.nu0;
  }
  return result;
}

}  // namespace bmfusion::core
