// Run-report engine behind the bmf_doctor tool.
//
// diagnose_run() ingests the observability artifacts a bmf_cli (or test)
// run leaves behind — a telemetry JSON snapshot, a JSON-lines structured
// log, a CV score-surface CSV and a BENCH_*.json history — and distills
// them into one RunReport: numeric-health counters, warm-start hit rates,
// histogram latency quantiles, log-level tallies, the CV surface around its
// optimum, bench deltas vs the previous record, and a list of human-readable
// findings ("dc solver fell back to the damped ladder 3 times").
//
// Every input is optional; the report covers whatever was provided. All
// parsing goes through common/json.hpp and common/csv.hpp, so malformed
// inputs surface as DataError with the offending path attached.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bmfusion::core {

/// Tunable alarm thresholds; defaults match scripts/bench_check.py.
struct DoctorThresholds {
  double max_throughput_drop_pct = 5.0;  ///< bench: throughput regression
  double max_time_rise_pct = 10.0;       ///< bench: per-stage time regression
  double max_disqualified_ratio = 0.5;   ///< CV: disqualified / grid points
  double min_mc_parallel_efficiency = 0.6;  ///< MC: busy / (elapsed * threads)
  /// Serve-plane latency budget: any serve.<op>.latency_us histogram whose
  /// p99 exceeds this (in milliseconds) is a finding. 0 disables the check.
  double max_serve_p99_ms = 0.0;
};

/// Where to read each artifact; empty string = section omitted.
struct DoctorInputs {
  std::string snapshot_path;    ///< telemetry json_snapshot() output
  /// Inline snapshot document; used instead of snapshot_path when non-empty
  /// (bmf_doctor --live feeds the /statusz "metrics" object through here).
  std::string snapshot_json;
  std::string log_path;         ///< JSON-lines log (Logger::attach_json_file)
  std::string bench_path;       ///< BENCH_*.json append-style history
  std::string cv_surface_path;  ///< CSV: kappa0,nu0,score (bmf_cli --cv-surface)
};

/// One counter the numeric-health section surfaces, with the raw value.
struct CounterReading {
  std::string name;
  double value = 0.0;
};

/// Latency quantiles for one telemetry histogram.
struct HistogramQuantiles {
  std::string name;
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Aggregate of the JSON-lines log.
struct LogSummary {
  std::uint64_t total = 0;
  std::uint64_t debug = 0;
  std::uint64_t info = 0;
  std::uint64_t warn = 0;
  std::uint64_t error = 0;
  std::uint64_t malformed_lines = 0;
  std::uint64_t error_notifications = 0;  ///< "error raised" hook events
  std::uint64_t flight_dumps = 0;         ///< flight_recorder_dump headers
  std::vector<std::string> recent_warnings;  ///< last few warn/error messages
};

/// One CV grid point from the surface CSV.
struct CvSurfacePoint {
  double kappa0 = 0.0;
  double nu0 = 0.0;
  double score = 0.0;
};

/// Multi-population fusion state, from the snapshot's fusion.* telemetry.
struct FusionSummary {
  std::size_t populations = 0;           ///< gauge fusion.populations
  std::size_t observed_populations = 0;  ///< populations with samples
  double signal_variance = 0.0;   ///< pooled tau^2 at the last snapshot
  double shrinkage = 0.0;         ///< correlation shrinkage lambda
  double mean_abs_correlation = 0.0;  ///< mean |rho| off the diagonal
  /// (population index, sample tally) from fusion.population.<p>.samples,
  /// sorted by index.
  std::vector<std::pair<std::size_t, double>> population_samples;
};

/// Newest-vs-previous comparison for one bench scalar.
struct BenchDelta {
  std::string metric;
  double previous = 0.0;
  double current = 0.0;
  double delta_pct = 0.0;  ///< signed, relative to previous
  bool regression = false;
};

struct RunReport {
  // Numeric health (from the snapshot's counters).
  std::vector<CounterReading> health_counters;
  std::optional<double> warm_start_hit_rate;  ///< hits / (hits + misses)
  std::optional<double> cv_disqualified_ratio;
  /// Parallel Monte Carlo utilisation: circuit.mc.busy_us (per-worker wall
  /// time summed over the workers) divided by elapsed wall time times the
  /// thread count — the fraction of the run each worker spent with work
  /// assigned. Present only when a run recorded the circuit.mc.* telemetry
  /// with more than one worker thread.
  std::optional<double> mc_parallel_efficiency;

  std::vector<HistogramQuantiles> histograms;
  std::optional<LogSummary> log_summary;
  std::optional<FusionSummary> fusion;  ///< present when fusion.* recorded

  /// Serve-plane gauges (serve.* from the snapshot: sessions, open
  /// populations, per-loop connection/buffer/pipeline state). Present only
  /// for snapshots taken from a serving process.
  std::vector<CounterReading> serve_gauges;

  std::vector<CvSurfacePoint> cv_surface;  ///< sorted by descending score
  std::optional<CvSurfacePoint> cv_best;

  std::string bench_label;  ///< newest record's label, when history present
  std::vector<BenchDelta> bench_deltas;

  /// Human-readable findings; empty means a clean bill of health.
  std::vector<std::string> findings;

  [[nodiscard]] std::string to_markdown() const;
  [[nodiscard]] std::string to_json() const;
};

/// Builds the report from whichever inputs are non-empty. Throws DataError
/// when a provided file is missing or malformed.
[[nodiscard]] RunReport diagnose_run(const DoctorInputs& inputs,
                                     const DoctorThresholds& thresholds = {});

}  // namespace bmfusion::core
