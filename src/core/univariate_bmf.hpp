// Univariate BMF baseline (the prior art this paper extends, ref. [7]).
//
// Estimates each metric independently with a normal-gamma conjugate prior —
// mathematically the d = 1 special case of the normal-Wishart machinery, so
// it reuses NormalWishart per dimension. Comparing it against the
// multivariate estimator quantifies the value of fusing *correlations*,
// which is exactly the paper's motivation (Section 2, last paragraph).
#pragma once

#include <utility>
#include <vector>

#include "core/cross_validation.hpp"
#include "core/estimator.hpp"
#include "core/moments.hpp"
#include "linalg/matrix.hpp"

namespace bmfusion::core {

struct UnivariateBmfResult {
  linalg::Vector mean;       ///< per-metric MAP means
  linalg::Vector variance;   ///< per-metric MAP variances
  std::vector<double> kappa0;  ///< selected per dimension
  std::vector<double> nu0;     ///< selected per dimension

  /// Moments with a diagonal covariance (the best a univariate method can
  /// report); usable with the same error metrics as the multivariate
  /// estimators.
  [[nodiscard]] GaussianMoments as_moments() const;
};

/// Runs per-dimension univariate BMF (1-D cross validation per metric) in
/// the scaled space. `early_scaled` supplies each dimension's prior mean and
/// variance; off-diagonal early knowledge is deliberately ignored.
[[nodiscard]] UnivariateBmfResult estimate_univariate_bmf(
    const GaussianMoments& early_scaled, const linalg::Matrix& late_scaled,
    const CrossValidationConfig& config = {});

/// The univariate baseline behind the unified MomentEstimator interface.
/// Like estimate_univariate_bmf it works in the scaled space and ignores the
/// nominal point; the reported covariance is diagonal.
///
/// Streaming: samples (already normalized by the caller, like the batch
/// path) accumulate into cv.folds fold streams; snapshot() projects each
/// fold's statistics onto every dimension and runs the per-metric 1-D
/// hyper-parameter search from those projections.
class UnivariateBmfEstimator final : public MomentEstimator {
 public:
  explicit UnivariateBmfEstimator(GaussianMoments early_scaled,
                                  CrossValidationConfig cv = {})
      : early_scaled_(std::move(early_scaled)), cv_(cv) {
    early_scaled_.validate();
    cv_.validate();
  }

  [[nodiscard]] std::string_view name() const override {
    return "univariate-bmf";
  }

 protected:
  [[nodiscard]] EstimateResult do_estimate(
      const linalg::Matrix& samples,
      const linalg::Vector& nominal) const override {
    (void)nominal;  // operates in the already-normalized space
    EstimateResult result;
    result.moments = estimate_univariate_bmf(early_scaled_, samples, cv_)
                         .as_moments();
    result.scaled_moments = result.moments;
    return result;
  }

  [[nodiscard]] EstimateResult do_estimate_stats(
      const SufficientStats& stats,
      const linalg::Vector& nominal) const override;
  [[nodiscard]] EstimateResult do_snapshot(
      const std::vector<SufficientStats>& fold_totals,
      const linalg::Vector& nominal) const override;
  [[nodiscard]] std::size_t stream_folds() const override {
    return cv_.folds;
  }

 private:
  GaussianMoments early_scaled_;
  CrossValidationConfig cv_;
};

}  // namespace bmfusion::core
