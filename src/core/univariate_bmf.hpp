// Univariate BMF baseline (the prior art this paper extends, ref. [7]).
//
// Estimates each metric independently with a normal-gamma conjugate prior —
// mathematically the d = 1 special case of the normal-Wishart machinery, so
// it reuses NormalWishart per dimension. Comparing it against the
// multivariate estimator quantifies the value of fusing *correlations*,
// which is exactly the paper's motivation (Section 2, last paragraph).
#pragma once

#include <vector>

#include "core/cross_validation.hpp"
#include "core/moments.hpp"
#include "linalg/matrix.hpp"

namespace bmfusion::core {

struct UnivariateBmfResult {
  linalg::Vector mean;       ///< per-metric MAP means
  linalg::Vector variance;   ///< per-metric MAP variances
  std::vector<double> kappa0;  ///< selected per dimension
  std::vector<double> nu0;     ///< selected per dimension

  /// Moments with a diagonal covariance (the best a univariate method can
  /// report); usable with the same error metrics as the multivariate
  /// estimators.
  [[nodiscard]] GaussianMoments as_moments() const;
};

/// Runs per-dimension univariate BMF (1-D cross validation per metric) in
/// the scaled space. `early_scaled` supplies each dimension's prior mean and
/// variance; off-diagonal early knowledge is deliberately ignored.
[[nodiscard]] UnivariateBmfResult estimate_univariate_bmf(
    const GaussianMoments& early_scaled, const linalg::Matrix& late_scaled,
    const CrossValidationConfig& config = {});

}  // namespace bmfusion::core
