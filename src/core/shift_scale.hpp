// Performance shift and scaling (paper Section 4.1).
//
// Early- and late-stage distributions share a shape but not nominal values,
// and raw metrics span many orders of magnitude (gain in dB vs. power in
// watts). Each stage's samples are therefore shifted by that stage's
// *nominal* simulation result and scaled by the *early-stage* per-dimension
// standard deviation, making both distributions origin-centered and
// "isotropic" before fusion.
#pragma once

#include "core/moments.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace bmfusion::core {

/// Per-dimension affine map y = (x - shift) / scale.
class ShiftScale {
 public:
  /// `scale` entries must be strictly positive.
  ShiftScale(linalg::Vector shift, linalg::Vector scale);

  [[nodiscard]] std::size_t dimension() const { return shift_.size(); }
  [[nodiscard]] const linalg::Vector& shift() const { return shift_; }
  [[nodiscard]] const linalg::Vector& scale() const { return scale_; }

  /// Forward transform of one point.
  [[nodiscard]] linalg::Vector apply(const linalg::Vector& x) const;

  /// Forward transform of a sample matrix (row-wise).
  [[nodiscard]] linalg::Matrix apply(const linalg::Matrix& samples) const;

  /// Exact push-forward of Gaussian moments:
  /// mean' = (mean - shift)/scale, cov'_ij = cov_ij/(scale_i scale_j).
  [[nodiscard]] GaussianMoments apply(const GaussianMoments& moments) const;

  /// Algebraic push-forward of sufficient statistics: the stats of the
  /// transformed samples computed from the stats of the raw samples,
  ///   sum'_r   = (sum_r - n s_r) / c_r
  ///   outer'_rc = (outer_rc - s_c sum_r - s_r sum_c + n s_r s_c)/(c_r c_c).
  /// Exact in real arithmetic; in floating point the subtractions can
  /// cancel when |shift| dwarfs the sample spread, so prefer transforming
  /// samples before accumulation when raw rows are available (the streaming
  /// observe path does exactly that).
  [[nodiscard]] SufficientStats apply(const SufficientStats& stats) const;

  /// Inverse transform of one point.
  [[nodiscard]] linalg::Vector invert(const linalg::Vector& y) const;

  /// Exact pull-back of Gaussian moments into original units.
  [[nodiscard]] GaussianMoments invert(const GaussianMoments& moments) const;

 private:
  linalg::Vector shift_;
  linalg::Vector scale_;
};

/// Builds the two stage transforms of Section 4.1: both use the early
/// stage's standard deviations (square roots of the early covariance
/// diagonal), shifted by the respective stage's nominal metrics.
struct StageTransforms {
  ShiftScale early;
  ShiftScale late;
};
[[nodiscard]] StageTransforms make_stage_transforms(
    const linalg::Vector& early_nominal, const linalg::Vector& late_nominal,
    const GaussianMoments& early_moments);

}  // namespace bmfusion::core
