// Performance shift and scaling (paper Section 4.1).
//
// Early- and late-stage distributions share a shape but not nominal values,
// and raw metrics span many orders of magnitude (gain in dB vs. power in
// watts). Each stage's samples are therefore shifted by that stage's
// *nominal* simulation result and scaled by the *early-stage* per-dimension
// standard deviation, making both distributions origin-centered and
// "isotropic" before fusion.
#pragma once

#include "core/moments.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace bmfusion::core {

/// Per-dimension affine map y = (x - shift) / scale.
class ShiftScale {
 public:
  /// `scale` entries must be strictly positive.
  ShiftScale(linalg::Vector shift, linalg::Vector scale);

  [[nodiscard]] std::size_t dimension() const { return shift_.size(); }
  [[nodiscard]] const linalg::Vector& shift() const { return shift_; }
  [[nodiscard]] const linalg::Vector& scale() const { return scale_; }

  /// Forward transform of one point.
  [[nodiscard]] linalg::Vector apply(const linalg::Vector& x) const;

  /// Forward transform of a sample matrix (row-wise).
  [[nodiscard]] linalg::Matrix apply(const linalg::Matrix& samples) const;

  /// Exact push-forward of Gaussian moments:
  /// mean' = (mean - shift)/scale, cov'_ij = cov_ij/(scale_i scale_j).
  [[nodiscard]] GaussianMoments apply(const GaussianMoments& moments) const;

  /// Inverse transform of one point.
  [[nodiscard]] linalg::Vector invert(const linalg::Vector& y) const;

  /// Exact pull-back of Gaussian moments into original units.
  [[nodiscard]] GaussianMoments invert(const GaussianMoments& moments) const;

 private:
  linalg::Vector shift_;
  linalg::Vector scale_;
};

/// Builds the two stage transforms of Section 4.1: both use the early
/// stage's standard deviations (square roots of the early covariance
/// diagonal), shifted by the respective stage's nominal metrics.
struct StageTransforms {
  ShiftScale early;
  ShiftScale late;
};
[[nodiscard]] StageTransforms make_stage_transforms(
    const linalg::Vector& early_nominal, const linalg::Vector& late_nominal,
    const GaussianMoments& early_moments);

}  // namespace bmfusion::core
