// BMF-PDF: distribution-level Bayesian model fusion (in the spirit of
// ref. [8] of the paper, Li et al., ICCAD 2012).
//
// Ref. [8] estimates a single metric's late-stage *probability density*
// (not just its moments) by re-using the early-stage density as prior
// knowledge. This module implements that idea with the same conjugate
// machinery the rest of the library uses: the density is represented as a
// binned histogram, the early-stage histogram anchors a Dirichlet prior
// over the bin probabilities, the few late-stage samples update it by
// conjugacy, and the prior strength (how much the early-stage shape is
// trusted) is selected by maximizing the closed-form Dirichlet-multinomial
// evidence — the direct analogue of Section 4.2's hyper-parameter search.
//
// Compared to the moment-level estimator this captures non-Gaussian shape
// (skew, multimodality) of a single metric; compared to the multivariate
// method it cannot see correlations. It completes the prior-work trio:
// [5] BMF-BD (pass/fail), [7] univariate moments, [8] densities.
#pragma once

#include <cstddef>
#include <vector>

namespace bmfusion::core {

/// Piecewise-constant density on uniform bins over [lo, hi].
class HistogramPdf {
 public:
  /// `probabilities` must be non-negative and sum to ~1 (renormalized).
  HistogramPdf(double lo, double hi, std::vector<double> probabilities);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t bin_count() const { return prob_.size(); }
  [[nodiscard]] double bin_width() const {
    return (hi_ - lo_) / static_cast<double>(prob_.size());
  }
  [[nodiscard]] const std::vector<double>& probabilities() const {
    return prob_;
  }

  /// Density at x (0 outside [lo, hi)).
  [[nodiscard]] double pdf(double x) const;

  /// P(X <= x), piecewise linear.
  [[nodiscard]] double cdf(double x) const;

  /// Mean and standard deviation of the binned density (midpoint rule).
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;

  /// Bin index of x, clamped into range.
  [[nodiscard]] std::size_t bin_of(double x) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> prob_;
};

struct PdfBmfConfig {
  std::size_t bins = 32;
  /// Prior concentrations (total pseudo-counts) searched, log-spaced.
  double concentration_min = 4.0;
  double concentration_max = 1e5;
  std::size_t concentration_points = 25;
  /// Additive smoothing applied to the early histogram so no bin has an
  /// exactly-zero prior probability.
  double smoothing = 0.5;
};

struct PdfBmfResult {
  HistogramPdf pdf;            ///< fused density (posterior mean)
  double concentration = 0.0;  ///< selected prior strength
  double log_evidence = 0.0;   ///< of the selected model (per sample)
};

/// Fuses the early-stage sample set (large, cheap) with the late-stage
/// samples (few, expensive) into a late-stage density estimate. The bin
/// range spans both sample sets with a small margin. Requires >= 10 early
/// and >= 1 late samples.
[[nodiscard]] PdfBmfResult estimate_pdf_bmf(
    const std::vector<double>& early_samples,
    const std::vector<double>& late_samples, const PdfBmfConfig& config = {});

/// Closed-form log evidence of counts under a Dirichlet(alpha) prior:
/// log [ B(alpha + counts) / B(alpha) ] with B the multivariate beta.
[[nodiscard]] double dirichlet_multinomial_log_evidence(
    const std::vector<double>& alpha, const std::vector<double>& counts);

}  // namespace bmfusion::core
