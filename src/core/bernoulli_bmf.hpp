// BMF-BD: Bayesian model fusion on the Bernoulli distribution (ref. [5] of
// the paper, Fang et al., DAC 2014).
//
// The prior-art baseline for *direct* yield estimation: every die is a
// pass/fail observation, modeled as Bernoulli(y). The early-stage yield
// estimate anchors a Beta conjugate prior (via its mode, mirroring how the
// multivariate method anchors the normal-Wishart mode), a handful of
// late-stage pass/fail results update it, and the MAP of the posterior is
// the fused yield. The prior concentration — how strongly the early stage
// is trusted — is selected by maximizing the closed-form Beta-Bernoulli
// model evidence over a log-spaced grid, the direct analogue of the
// hyper-parameter search in Section 4.2.
//
// Comparing this to the moment-based flow (examples/yield_estimation)
// shows what the multivariate method adds: BMF-BD only ever learns the
// one-dimensional yield, not which metrics cause the loss.
#pragma once

#include <cstddef>

#include "linalg/vector.hpp"

namespace bmfusion::core {

/// Beta(alpha, beta) distribution over a yield value.
struct BetaPosterior {
  double alpha = 1.0;
  double beta = 1.0;

  /// Posterior mode (MAP yield); requires alpha + beta > 2.
  [[nodiscard]] double map_estimate() const;

  /// Posterior mean alpha / (alpha + beta).
  [[nodiscard]] double mean() const;

  /// Central credible interval [lo, hi] at the given level (e.g. 0.95).
  struct Interval {
    double lower = 0.0;
    double upper = 1.0;
  };
  [[nodiscard]] Interval credible_interval(double level) const;
};

struct BernoulliBmfConfig {
  /// Prior concentrations (equivalent early sample counts) searched; the
  /// grid is log-spaced over [min, max] with `points` entries.
  double concentration_min = 2.5;
  double concentration_max = 2000.0;
  std::size_t points = 25;
};

struct BernoulliBmfResult {
  double yield = 0.0;           ///< MAP fused yield
  BetaPosterior posterior;      ///< full posterior over the yield
  double concentration = 0.0;   ///< selected prior strength
  double log_evidence = 0.0;    ///< evidence of the selected model
};

/// Beta prior whose *mode* equals `early_yield` with total concentration
/// `concentration` (> 2): alpha = 1 + y (c - 2), beta = 1 + (1-y)(c - 2).
[[nodiscard]] BetaPosterior beta_prior_from_early_yield(double early_yield,
                                                        double
                                                            concentration);

/// Conjugate update: `passes` successes out of `total` trials.
[[nodiscard]] BetaPosterior update_beta(const BetaPosterior& prior,
                                        std::size_t passes,
                                        std::size_t total);

/// Closed-form log evidence of the Beta-Bernoulli model:
/// log p(D) = log B(alpha_n, beta_n) - log B(alpha_0, beta_0).
[[nodiscard]] double beta_bernoulli_log_evidence(const BetaPosterior& prior,
                                                 std::size_t passes,
                                                 std::size_t total);

/// Full BMF-BD flow: evidence-selected concentration, conjugate update,
/// MAP yield. `early_yield` in (0, 1); `passes <= total`, `total >= 1`.
[[nodiscard]] BernoulliBmfResult estimate_bernoulli_bmf(
    double early_yield, std::size_t passes, std::size_t total,
    const BernoulliBmfConfig& config = {});

}  // namespace bmfusion::core
