// Implements the deprecated SequentialFusion shim; the definition itself
// must not trip -Werror=deprecated-declarations.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

#include "core/sequential.hpp"

#include "common/contracts.hpp"

namespace bmfusion::core {

using linalg::Matrix;
using linalg::Vector;

SequentialFusion::SequentialFusion(NormalWishart prior)
    : state_(std::move(prior)) {}

void SequentialFusion::observe(const Vector& sample) {
  BMFUSION_REQUIRE(sample.size() == state_.dimension(),
                   "sample dimension mismatch");
  Matrix one(1, sample.size());
  one.set_row(0, sample);
  state_ = state_.posterior(one);
  ++count_;
}

void SequentialFusion::observe(const Matrix& samples) {
  BMFUSION_REQUIRE(samples.cols() == state_.dimension(),
                   "sample dimension mismatch");
  if (samples.rows() == 0) return;
  state_ = state_.posterior(samples);
  count_ += samples.rows();
}

GaussianMoments SequentialFusion::current_estimate() const {
  return state_.map_estimate();
}

double SequentialFusion::predictive_log_pdf(const Vector& x) const {
  return NormalWishart::student_t_log_pdf(state_.posterior_predictive(), x);
}

}  // namespace bmfusion::core

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
