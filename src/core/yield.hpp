// Parametric yield estimation — the application motivating the paper's
// introduction: once the late-stage moments are known, the fraction of dies
// whose metrics fall inside the specification box is the parametric yield.
#pragma once

#include <limits>

#include "core/moments.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "stats/rng.hpp"

namespace bmfusion::core {

/// Per-metric specification window. Use -/+infinity for one-sided specs.
struct SpecBox {
  linalg::Vector lower;
  linalg::Vector upper;

  [[nodiscard]] std::size_t dimension() const { return lower.size(); }

  /// Throws ContractError when sizes mismatch or any lower > upper.
  void validate() const;

  /// True when `x` satisfies every spec.
  [[nodiscard]] bool contains(const linalg::Vector& x) const;

  /// A box with all specs open (+/- infinity) in `d` dimensions.
  [[nodiscard]] static SpecBox unconstrained(std::size_t d);
};

/// Yield estimate with its Monte-Carlo standard error.
struct YieldEstimate {
  double yield = 0.0;
  double standard_error = 0.0;
  std::size_t sample_count = 0;

  /// Wilson score interval at the given confidence level — well-behaved
  /// even at yield ~ 0 or ~ 1 where the Wald (+/- z se) interval breaks.
  struct Interval {
    double lower = 0.0;
    double upper = 1.0;
  };
  [[nodiscard]] Interval wilson_interval(double level = 0.95) const;
};

/// Monte-Carlo yield of a Gaussian model over the spec box.
[[nodiscard]] YieldEstimate estimate_yield(const GaussianMoments& moments,
                                           const SpecBox& specs,
                                           stats::Xoshiro256pp& rng,
                                           std::size_t sample_count = 100000);

/// Empirical yield of a raw sample set (rows of `samples`).
[[nodiscard]] YieldEstimate empirical_yield(const linalg::Matrix& samples,
                                            const SpecBox& specs);

/// Result of a mean-shift importance-sampling run.
struct ImportanceSamplingResult {
  double failure_probability = 0.0;  ///< P(X outside the spec box)
  double yield = 0.0;                ///< 1 - failure_probability
  double standard_error = 0.0;       ///< of the failure probability
  linalg::Vector shift_point;        ///< sampling distribution's mean
  std::size_t sample_count = 0;
};

/// High-sigma yield via mean-shift importance sampling: the sampling mean
/// is moved to the most-likely failure point (the spec-box face with the
/// smallest per-face Mahalanobis distance), draws come from
/// N(shift, Sigma), and likelihood-ratio weights keep the estimate
/// unbiased. Orders of magnitude fewer samples than plain Monte Carlo for
/// small failure probabilities concentrated around one dominant failure
/// mode; with several comparably-likely failure faces the variance grows
/// but the estimate stays unbiased. Requires at least one finite spec
/// bound.
[[nodiscard]] ImportanceSamplingResult estimate_yield_importance(
    const GaussianMoments& moments, const SpecBox& specs,
    stats::Xoshiro256pp& rng, std::size_t sample_count = 20000);

}  // namespace bmfusion::core
