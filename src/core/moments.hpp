// First two multivariate moments: the quantity the whole paper estimates.
#pragma once

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "stats/sufficient_stats.hpp"

namespace bmfusion::core {

/// Mean vector + covariance matrix of a d-dimensional Gaussian model
/// (paper eqs. 5-7).
struct GaussianMoments {
  linalg::Vector mean;
  linalg::Matrix covariance;

  [[nodiscard]] std::size_t dimension() const { return mean.size(); }

  /// Throws ContractError when shapes mismatch or the covariance is not
  /// symmetric; NumericError (with dimension context) when it is not
  /// positive definite. Positive-definiteness is probed with the standard
  /// ridge-jitter retry (linalg::CholeskyJitter defaults), so a covariance
  /// that is semi-definite up to rounding — a near-singular early-stage
  /// prior, a tiny-fold MAP estimate — is accepted; genuinely indefinite
  /// matrices still throw.
  void validate() const;
};

/// Additive sufficient statistics (n, sum x, sum x x^T) of a sample set.
///
/// The implementation lives in the stats layer (stats::SufficientStats) so
/// the circuit Monte Carlo driver can stream into the same accumulator the
/// cross-validation engine consumes; this alias preserves the historical
/// core-namespace spelling.
using SufficientStats = stats::SufficientStats;

/// Gaussian log-likelihood of the rows of `samples` under `moments` — the
/// log of the paper's likelihood function eq. (9). Used as the
/// cross-validation score.
[[nodiscard]] double log_likelihood(const GaussianMoments& moments,
                                    const linalg::Matrix& samples);

/// Same score computed from sufficient statistics instead of raw samples:
///   sum_i log N(X_i | mu, Sigma) = -n/2 (d log 2pi + log|Sigma|)
///     - 1/2 [ trace(Sigma^{-1} S) + n (Xbar-mu)^T Sigma^{-1} (Xbar-mu) ].
/// Cost is O(d^3) regardless of how many samples the statistics summarize.
/// Strict: throws NumericError when the covariance is not positive definite.
[[nodiscard]] double log_likelihood(const GaussianMoments& moments,
                                    const SufficientStats& stats);

/// Opt-in graceful-degradation policy for the likelihood score. The fallback
/// chain is: clean Cholesky -> escalating ridge-jitter retries (`jitter`,
/// capped at jitter.attempts) -> clamped-pivot LDLT (`ldlt`, handles
/// covariances that are semi-definite up to rounding). Only a genuinely
/// indefinite covariance still throws NumericError.
struct LikelihoodFallback {
  linalg::CholeskyJitter jitter;  ///< ridge-retry schedule (1e-12..1e-8 |A|)
  bool ldlt = true;               ///< allow the clamped-LDLT last resort
};

/// Robust variant of the sufficient-statistic score used by the CV grid
/// sweep: identical to the strict overload on well-conditioned covariances
/// (the clean Cholesky attempt is bit-identical), degrades per `fallback`
/// on near-singular ones instead of disqualifying the grid point.
[[nodiscard]] double log_likelihood(const GaussianMoments& moments,
                                    const SufficientStats& stats,
                                    const LikelihoodFallback& fallback);

/// Estimation error of a mean vector, ||est - exact||_2 (paper eq. 37).
[[nodiscard]] double mean_error(const linalg::Vector& estimated,
                                const linalg::Vector& exact);

/// Estimation error of a covariance matrix, ||est - exact||_F (paper
/// eq. 38).
[[nodiscard]] double covariance_error(const linalg::Matrix& estimated,
                                      const linalg::Matrix& exact);

}  // namespace bmfusion::core
