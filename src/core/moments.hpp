// First two multivariate moments: the quantity the whole paper estimates.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace bmfusion::core {

/// Mean vector + covariance matrix of a d-dimensional Gaussian model
/// (paper eqs. 5-7).
struct GaussianMoments {
  linalg::Vector mean;
  linalg::Matrix covariance;

  [[nodiscard]] std::size_t dimension() const { return mean.size(); }

  /// Throws ContractError when shapes mismatch or the covariance is not
  /// symmetric; NumericError when it is not positive definite.
  void validate() const;
};

/// Gaussian log-likelihood of the rows of `samples` under `moments` — the
/// log of the paper's likelihood function eq. (9). Used as the
/// cross-validation score.
[[nodiscard]] double log_likelihood(const GaussianMoments& moments,
                                    const linalg::Matrix& samples);

/// Estimation error of a mean vector, ||est - exact||_2 (paper eq. 37).
[[nodiscard]] double mean_error(const linalg::Vector& estimated,
                                const linalg::Vector& exact);

/// Estimation error of a covariance matrix, ||est - exact||_F (paper
/// eq. 38).
[[nodiscard]] double covariance_error(const linalg::Matrix& estimated,
                                      const linalg::Matrix& exact);

}  // namespace bmfusion::core
