// Algorithm 1: Bayesian model fusion for multivariate moment estimation.
//
// End-to-end flow: shift/scale both stages (Sec. 4.1), select (nu0, kappa0)
// by two-dimensional Q-fold cross validation (Sec. 4.2), anchor the
// normal-Wishart prior at the early-stage moments (eqs. 19-21), fuse with
// the late-stage samples by MAP (eqs. 29-32), and pull the estimate back to
// original units.
#pragma once

#include "core/cross_validation.hpp"
#include "core/moments.hpp"
#include "core/shift_scale.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace bmfusion::core {

/// Everything carried over from the early stage: its estimated moments and
/// the nominal (variation-free) metrics used by the shift step.
struct EarlyStageKnowledge {
  GaussianMoments moments;
  linalg::Vector nominal;
};

struct BmfConfig {
  CrossValidationConfig cv;
  /// When false the samples are fused in raw units (no Section 4.1
  /// normalization) — exposed for the shift/scale ablation bench.
  bool apply_shift_scale = true;
};

struct BmfResult {
  GaussianMoments moments;         ///< estimate in original late-stage units
  GaussianMoments scaled_moments;  ///< estimate in the fused (scaled) space
  double kappa0 = 0.0;             ///< selected hyper-parameter
  double nu0 = 0.0;                ///< selected hyper-parameter
  double cv_score = 0.0;           ///< best held-out log-likelihood
};

/// Reusable estimator bound to one early stage.
class BmfEstimator {
 public:
  BmfEstimator(EarlyStageKnowledge early, BmfConfig config = {});

  /// Runs Algorithm 1 on raw late-stage samples. `late_nominal` is the
  /// single nominal late-stage simulation (P_L,NOM). Needs >= 2 samples.
  [[nodiscard]] BmfResult estimate(const linalg::Matrix& late_samples,
                                   const linalg::Vector& late_nominal) const;

  /// Scaled-space core used by estimate() and by the experiment harness
  /// (which evaluates errors in scaled space): selects hyper-parameters and
  /// fuses, all inputs/outputs in the normalized space.
  [[nodiscard]] static BmfResult estimate_scaled(
      const GaussianMoments& early_scaled,
      const linalg::Matrix& late_scaled, const CrossValidationConfig& cv);

  /// MAP fusion at *fixed* hyper-parameters (no cross validation), scaled
  /// space. Exposed for the hyper-parameter ablation bench and tests.
  [[nodiscard]] static GaussianMoments fuse_at(
      const GaussianMoments& early_scaled,
      const linalg::Matrix& late_scaled, double kappa0, double nu0);

  [[nodiscard]] const EarlyStageKnowledge& early() const { return early_; }
  [[nodiscard]] const BmfConfig& config() const { return config_; }

  /// The Section 4.1 transform this estimator applies to late-stage data.
  [[nodiscard]] ShiftScale late_transform(
      const linalg::Vector& late_nominal) const;

 private:
  EarlyStageKnowledge early_;
  BmfConfig config_;
};

}  // namespace bmfusion::core
