// Algorithm 1: Bayesian model fusion for multivariate moment estimation.
//
// End-to-end flow: shift/scale both stages (Sec. 4.1), select (nu0, kappa0)
// by two-dimensional Q-fold cross validation (Sec. 4.2), anchor the
// normal-Wishart prior at the early-stage moments (eqs. 19-21), fuse with
// the late-stage samples by MAP (eqs. 29-32), and pull the estimate back to
// original units.
#pragma once

#include <optional>
#include <vector>

#include "core/cross_validation.hpp"
#include "core/estimator.hpp"
#include "core/moments.hpp"
#include "core/shift_scale.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace bmfusion::core {

/// Everything carried over from the early stage: its estimated moments and
/// the nominal (variation-free) metrics used by the shift step.
struct EarlyStageKnowledge {
  GaussianMoments moments;
  linalg::Vector nominal;
};

struct BmfConfig {
  CrossValidationConfig cv;
  /// When false the samples are fused in raw units (no Section 4.1
  /// normalization) — exposed for the shift/scale ablation bench.
  bool apply_shift_scale = true;
  /// Hyper-parameter selection strategy. kCrossValidation is the paper's
  /// Q-fold search; estimation paths that cannot fold their data (a single
  /// pre-summarized SufficientStats, or a stream with fewer than two
  /// non-empty folds) downgrade to kEvidence automatically.
  HyperSelection selection = HyperSelection::kCrossValidation;

  BmfConfig& with_cv(CrossValidationConfig config) {
    cv = config;
    return *this;
  }
  BmfConfig& with_shift_scale(bool apply) {
    apply_shift_scale = apply;
    return *this;
  }
  BmfConfig& with_selection(HyperSelection strategy) {
    selection = strategy;
    return *this;
  }

  /// Throws ContractError when the embedded CV configuration is malformed.
  void validate() const { cv.validate(); }
};

/// BMF reports its estimate through the shared result type; the historical
/// name survives as an alias (the old cv_score field is now `score`).
using BmfResult = EstimateResult;

/// Reusable estimator bound to one early stage. Implements the unified
/// MomentEstimator interface: estimate(late_samples, late_nominal) runs
/// Algorithm 1 end to end. When shift/scale is enabled a non-empty
/// late-stage nominal is required (ContractError otherwise).
///
/// Streaming: call set_nominal(late_nominal) once, then observe()/absorb()
/// as measurements arrive. Samples are normalized on entry (Section 4.1)
/// and accumulated into config().cv.folds fold streams with the same
/// round-robin split as the batch CV engine, so snapshot() runs the
/// identical hyper-parameter search from fold statistics alone; when the
/// stream cannot sustain a fold split (single absorbed summary, < 2
/// non-empty folds) selection downgrades to the closed-form evidence.
class BmfEstimator final : public MomentEstimator {
 public:
  explicit BmfEstimator(EarlyStageKnowledge early, BmfConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "bmf"; }

  /// Scaled-space core used by estimate() and by the experiment harness
  /// (which evaluates errors in scaled space): selects hyper-parameters and
  /// fuses, all inputs/outputs in the normalized space.
  [[nodiscard]] static BmfResult estimate_scaled(
      const GaussianMoments& early_scaled,
      const linalg::Matrix& late_scaled, const CrossValidationConfig& cv);

  /// The same core fed from per-fold sufficient statistics in the scaled
  /// space — the one selection + fusion + fallback path every entry style
  /// (batch, stats-only, streaming snapshot) converges on. `selection`
  /// downgrades to evidence when fewer than two folds are non-empty.
  [[nodiscard]] static BmfResult estimate_scaled(
      const GaussianMoments& early_scaled,
      const std::vector<SufficientStats>& fold_stats,
      const CrossValidationConfig& cv,
      HyperSelection selection = HyperSelection::kCrossValidation);

  /// MAP fusion at *fixed* hyper-parameters (no cross validation), scaled
  /// space. Exposed for the hyper-parameter ablation bench and tests.
  [[nodiscard]] static GaussianMoments fuse_at(
      const GaussianMoments& early_scaled,
      const linalg::Matrix& late_scaled, double kappa0, double nu0);

  /// Same fusion from precomputed scaled-space statistics.
  [[nodiscard]] static GaussianMoments fuse_at(
      const GaussianMoments& early_scaled, const SufficientStats& late_stats,
      double kappa0, double nu0);

  [[nodiscard]] const EarlyStageKnowledge& early() const { return early_; }
  [[nodiscard]] const BmfConfig& config() const { return config_; }

  /// The Section 4.1 transform this estimator applies to late-stage data.
  [[nodiscard]] ShiftScale late_transform(
      const linalg::Vector& late_nominal) const;

 protected:
  [[nodiscard]] BmfResult do_estimate(
      const linalg::Matrix& late_samples,
      const linalg::Vector& late_nominal) const override;
  [[nodiscard]] BmfResult do_estimate_stats(
      const SufficientStats& late_stats,
      const linalg::Vector& late_nominal) const override;
  [[nodiscard]] BmfResult do_snapshot(
      const std::vector<SufficientStats>& fold_totals,
      const linalg::Vector& late_nominal) const override;
  [[nodiscard]] std::size_t stream_folds() const override {
    return config_.cv.folds;
  }
  [[nodiscard]] linalg::Vector stream_transform(
      const linalg::Vector& sample) const override;
  [[nodiscard]] SufficientStats stream_transform_stats(
      const SufficientStats& stats) const override;
  void on_nominal_changed() override;

 private:
  /// Stage transforms for `late_nominal`, cached across the streaming hot
  /// path (set_nominal invalidates). Throws ContractError when shift/scale
  /// is enabled and no nominal is available.
  [[nodiscard]] const StageTransforms& transforms_for(
      const linalg::Vector& late_nominal) const;

  EarlyStageKnowledge early_;
  BmfConfig config_;
  /// Lazy per-nominal cache (mutable: estimate()/snapshot() are const).
  mutable std::optional<StageTransforms> transform_cache_;
  mutable linalg::Vector transform_cache_nominal_;
};

}  // namespace bmfusion::core
