// Algorithm 1: Bayesian model fusion for multivariate moment estimation.
//
// End-to-end flow: shift/scale both stages (Sec. 4.1), select (nu0, kappa0)
// by two-dimensional Q-fold cross validation (Sec. 4.2), anchor the
// normal-Wishart prior at the early-stage moments (eqs. 19-21), fuse with
// the late-stage samples by MAP (eqs. 29-32), and pull the estimate back to
// original units.
#pragma once

#include "core/cross_validation.hpp"
#include "core/estimator.hpp"
#include "core/moments.hpp"
#include "core/shift_scale.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace bmfusion::core {

/// Everything carried over from the early stage: its estimated moments and
/// the nominal (variation-free) metrics used by the shift step.
struct EarlyStageKnowledge {
  GaussianMoments moments;
  linalg::Vector nominal;
};

struct BmfConfig {
  CrossValidationConfig cv;
  /// When false the samples are fused in raw units (no Section 4.1
  /// normalization) — exposed for the shift/scale ablation bench.
  bool apply_shift_scale = true;

  BmfConfig& with_cv(CrossValidationConfig config) {
    cv = config;
    return *this;
  }
  BmfConfig& with_shift_scale(bool apply) {
    apply_shift_scale = apply;
    return *this;
  }

  /// Throws ContractError when the embedded CV configuration is malformed.
  void validate() const { cv.validate(); }
};

/// BMF reports its estimate through the shared result type; the historical
/// name survives as an alias (the old cv_score field is now `score`).
using BmfResult = EstimateResult;

/// Reusable estimator bound to one early stage. Implements the unified
/// MomentEstimator interface: estimate(late_samples, late_nominal) runs
/// Algorithm 1 end to end. When shift/scale is enabled a non-empty
/// late-stage nominal is required (ContractError otherwise).
class BmfEstimator final : public MomentEstimator {
 public:
  explicit BmfEstimator(EarlyStageKnowledge early, BmfConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "bmf"; }

  /// Scaled-space core used by estimate() and by the experiment harness
  /// (which evaluates errors in scaled space): selects hyper-parameters and
  /// fuses, all inputs/outputs in the normalized space.
  [[nodiscard]] static BmfResult estimate_scaled(
      const GaussianMoments& early_scaled,
      const linalg::Matrix& late_scaled, const CrossValidationConfig& cv);

  /// MAP fusion at *fixed* hyper-parameters (no cross validation), scaled
  /// space. Exposed for the hyper-parameter ablation bench and tests.
  [[nodiscard]] static GaussianMoments fuse_at(
      const GaussianMoments& early_scaled,
      const linalg::Matrix& late_scaled, double kappa0, double nu0);

  [[nodiscard]] const EarlyStageKnowledge& early() const { return early_; }
  [[nodiscard]] const BmfConfig& config() const { return config_; }

  /// The Section 4.1 transform this estimator applies to late-stage data.
  [[nodiscard]] ShiftScale late_transform(
      const linalg::Vector& late_nominal) const;

 protected:
  [[nodiscard]] BmfResult do_estimate(
      const linalg::Matrix& late_samples,
      const linalg::Vector& late_nominal) const override;

 private:
  EarlyStageKnowledge early_;
  BmfConfig config_;
};

}  // namespace bmfusion::core
