#include "core/pdf_bmf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "core/cross_validation.hpp"

namespace bmfusion::core {

HistogramPdf::HistogramPdf(double lo, double hi,
                           std::vector<double> probabilities)
    : lo_(lo), hi_(hi), prob_(std::move(probabilities)) {
  BMFUSION_REQUIRE(hi_ > lo_, "histogram needs hi > lo");
  BMFUSION_REQUIRE(prob_.size() >= 2, "histogram needs >= 2 bins");
  double total = 0.0;
  for (const double p : prob_) {
    BMFUSION_REQUIRE(p >= 0.0, "bin probabilities must be non-negative");
    total += p;
  }
  BMFUSION_REQUIRE(total > 0.0, "histogram has no mass");
  for (double& p : prob_) p /= total;
}

std::size_t HistogramPdf::bin_of(double x) const {
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(prob_.size());
  const double clamped =
      std::clamp(t, 0.0, static_cast<double>(prob_.size()) - 1.0);
  return static_cast<std::size_t>(clamped);
}

double HistogramPdf::pdf(double x) const {
  if (x < lo_ || x >= hi_) return 0.0;
  return prob_[bin_of(x)] / bin_width();
}

double HistogramPdf::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const std::size_t k = bin_of(x);
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) acc += prob_[i];
  const double within = (x - (lo_ + bin_width() * static_cast<double>(k))) /
                        bin_width();
  return acc + prob_[k] * within;
}

double HistogramPdf::mean() const {
  double acc = 0.0;
  for (std::size_t k = 0; k < prob_.size(); ++k) {
    const double mid = lo_ + bin_width() * (static_cast<double>(k) + 0.5);
    acc += prob_[k] * mid;
  }
  return acc;
}

double HistogramPdf::stddev() const {
  const double m = mean();
  double acc = 0.0;
  for (std::size_t k = 0; k < prob_.size(); ++k) {
    const double mid = lo_ + bin_width() * (static_cast<double>(k) + 0.5);
    acc += prob_[k] * (mid - m) * (mid - m);
  }
  return std::sqrt(acc);
}

double dirichlet_multinomial_log_evidence(const std::vector<double>& alpha,
                                          const std::vector<double>& counts) {
  BMFUSION_REQUIRE(alpha.size() == counts.size() && !alpha.empty(),
                   "alpha/count size mismatch");
  double a_sum = 0.0;
  double n_sum = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    BMFUSION_REQUIRE(alpha[i] > 0.0, "dirichlet alpha must be positive");
    BMFUSION_REQUIRE(counts[i] >= 0.0, "counts must be non-negative");
    acc += std::lgamma(alpha[i] + counts[i]) - std::lgamma(alpha[i]);
    a_sum += alpha[i];
    n_sum += counts[i];
  }
  return acc + std::lgamma(a_sum) - std::lgamma(a_sum + n_sum);
}

PdfBmfResult estimate_pdf_bmf(const std::vector<double>& early_samples,
                              const std::vector<double>& late_samples,
                              const PdfBmfConfig& config) {
  BMFUSION_REQUIRE(early_samples.size() >= 10,
                   "pdf fusion needs >= 10 early samples");
  BMFUSION_REQUIRE(!late_samples.empty(), "pdf fusion needs late samples");
  BMFUSION_REQUIRE(config.bins >= 4, "pdf fusion needs >= 4 bins");

  // Bin range: both sample sets plus a 5% margin on each side.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const double x : early_samples) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  for (const double x : late_samples) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  BMFUSION_REQUIRE(hi > lo, "all samples identical: no density to estimate");
  const double margin = 0.05 * (hi - lo);
  lo -= margin;
  hi += margin;

  const auto histogram_of = [&](const std::vector<double>& samples) {
    std::vector<double> counts(config.bins, 0.0);
    const HistogramPdf grid(lo, hi, std::vector<double>(config.bins, 1.0));
    for (const double x : samples) counts[grid.bin_of(x)] += 1.0;
    return counts;
  };
  const std::vector<double> early_counts = histogram_of(early_samples);
  const std::vector<double> late_counts = histogram_of(late_samples);

  // Smoothed early-stage shape: the prior base measure.
  std::vector<double> early_shape(config.bins);
  double shape_total = 0.0;
  for (std::size_t k = 0; k < config.bins; ++k) {
    early_shape[k] = early_counts[k] + config.smoothing;
    shape_total += early_shape[k];
  }
  for (double& s : early_shape) s /= shape_total;

  // Evidence-selected concentration (prior pseudo-count total).
  PdfBmfResult best{
      HistogramPdf(lo, hi, std::vector<double>(config.bins, 1.0)), 0.0,
      -std::numeric_limits<double>::infinity()};
  for (const double c :
       log_spaced(config.concentration_min, config.concentration_max,
                  config.concentration_points)) {
    std::vector<double> alpha(config.bins);
    for (std::size_t k = 0; k < config.bins; ++k) {
      alpha[k] = c * early_shape[k];
    }
    const double evidence =
        dirichlet_multinomial_log_evidence(alpha, late_counts) /
        static_cast<double>(late_samples.size());
    if (evidence > best.log_evidence) {
      std::vector<double> posterior(config.bins);
      for (std::size_t k = 0; k < config.bins; ++k) {
        posterior[k] = alpha[k] + late_counts[k];  // Dirichlet posterior
      }
      best.pdf = HistogramPdf(lo, hi, std::move(posterior));  // post. mean
      best.concentration = c;
      best.log_evidence = evidence;
    }
  }
  return best;
}

}  // namespace bmfusion::core
