#include "core/bmf_estimator.hpp"

#include <utility>

#include "common/contracts.hpp"
#include "core/normal_wishart.hpp"

namespace bmfusion::core {

using linalg::Matrix;
using linalg::Vector;

namespace {

/// Restates a selection failure at the estimator boundary with the problem
/// size; the nested message keeps the grid-level detail.
[[noreturn]] void rethrow_selection_failure(const NumericError& e,
                                            std::size_t dimension,
                                            std::size_t sample_count) {
  throw NumericError("bmf: hyper-parameter selection failed",
                     ErrorContext{}
                         .with_operation("bmf-estimate")
                         .with_dimension(dimension)
                         .with_sample_count(sample_count)
                         .with_detail(e.what()));
}

}  // namespace

BmfEstimator::BmfEstimator(EarlyStageKnowledge early, BmfConfig config)
    : early_(std::move(early)), config_(std::move(config)) {
  early_.moments.validate();
  config_.validate();
  BMFUSION_REQUIRE(early_.nominal.size() == early_.moments.dimension(),
                   "early nominal must match the moment dimension");
}

ShiftScale BmfEstimator::late_transform(const Vector& late_nominal) const {
  return make_stage_transforms(early_.nominal, late_nominal, early_.moments)
      .late;
}

const StageTransforms& BmfEstimator::transforms_for(
    const Vector& late_nominal) const {
  BMFUSION_REQUIRE(late_nominal.size() == early_.moments.dimension(),
                   "bmf shift/scale needs a late-stage nominal point");
  if (!transform_cache_.has_value() ||
      !(transform_cache_nominal_ == late_nominal)) {
    transform_cache_ =
        make_stage_transforms(early_.nominal, late_nominal, early_.moments);
    transform_cache_nominal_ = late_nominal;
  }
  return *transform_cache_;
}

void BmfEstimator::on_nominal_changed() { transform_cache_.reset(); }

Vector BmfEstimator::stream_transform(const Vector& sample) const {
  if (!config_.apply_shift_scale) return sample;
  BMFUSION_REQUIRE(nominal().size() != 0,
                   "bmf streaming needs set_nominal before observe");
  return transforms_for(nominal()).late.apply(sample);
}

SufficientStats BmfEstimator::stream_transform_stats(
    const SufficientStats& stats) const {
  if (!config_.apply_shift_scale) return stats;
  BMFUSION_REQUIRE(nominal().size() != 0,
                   "bmf streaming needs set_nominal before absorb");
  return transforms_for(nominal()).late.apply(stats);
}

GaussianMoments BmfEstimator::fuse_at(const GaussianMoments& early_scaled,
                                      const Matrix& late_scaled,
                                      double kappa0, double nu0) {
  return fuse_at(early_scaled, SufficientStats::from_samples(late_scaled),
                 kappa0, nu0);
}

GaussianMoments BmfEstimator::fuse_at(const GaussianMoments& early_scaled,
                                      const SufficientStats& late_stats,
                                      double kappa0, double nu0) {
  early_scaled.validate();
  return map_fuse(early_scaled, late_stats, kappa0, nu0);
}

BmfResult BmfEstimator::estimate_scaled(const GaussianMoments& early_scaled,
                                        const Matrix& late_scaled,
                                        const CrossValidationConfig& cv) {
  CrossValidationResult selected;
  try {
    selected = select_hyperparameters(early_scaled, late_scaled, cv);
  } catch (const NumericError& e) {
    rethrow_selection_failure(e, early_scaled.dimension(),
                              late_scaled.rows());
  }
  BmfResult result;
  result.kappa0 = selected.kappa0;
  result.nu0 = selected.nu0;
  result.score = selected.score;
  result.cv_grid = selected.grid();
  result.scaled_moments =
      fuse_at(early_scaled, late_scaled, selected.kappa0, selected.nu0);
  result.moments = result.scaled_moments;  // identical when no transform
  return result;
}

BmfResult BmfEstimator::estimate_scaled(
    const GaussianMoments& early_scaled,
    const std::vector<SufficientStats>& fold_stats,
    const CrossValidationConfig& cv, HyperSelection selection) {
  BMFUSION_REQUIRE(!fold_stats.empty(),
                   "bmf estimation needs >= 1 fold statistic");
  SufficientStats totals(early_scaled.dimension());
  std::size_t nonempty_folds = 0;
  for (const SufficientStats& fold : fold_stats) {
    if (fold.count() == 0) continue;
    ++nonempty_folds;
    totals += fold;
  }
  BMFUSION_REQUIRE(totals.count() >= 1,
                   "bmf estimation needs >= 1 late-stage sample");

  // Cross validation needs at least two non-empty folds to hold data out;
  // anything less falls back to the closed-form evidence, which is exact
  // from a single sample.
  const bool can_fold =
      nonempty_folds >= 2 && totals.count() >= 2 &&
      selection == HyperSelection::kCrossValidation;

  CrossValidationResult selected;
  try {
    selected = can_fold
                   ? select_hyperparameters(early_scaled, fold_stats, cv)
                   : select_hyperparameters_evidence(early_scaled, totals, cv);
  } catch (const NumericError& e) {
    rethrow_selection_failure(e, early_scaled.dimension(), totals.count());
  }
  BmfResult result;
  result.kappa0 = selected.kappa0;
  result.nu0 = selected.nu0;
  result.score = selected.score;
  result.cv_grid = selected.grid();
  result.scaled_moments =
      fuse_at(early_scaled, totals, selected.kappa0, selected.nu0);
  result.moments = result.scaled_moments;  // identical when no transform
  return result;
}

BmfResult BmfEstimator::do_estimate(const Matrix& late_samples,
                                    const Vector& late_nominal) const {
  BMFUSION_REQUIRE(late_samples.cols() == early_.moments.dimension(),
                   "late samples must match the early-stage dimension");
  BMFUSION_REQUIRE(late_samples.rows() >= 2,
                   "bmf estimation needs >= 2 late-stage samples");

  if (!config_.apply_shift_scale) {
    BmfResult result =
        estimate_scaled(early_.moments, late_samples, config_.cv);
    return result;
  }

  const StageTransforms& transforms = transforms_for(late_nominal);
  const GaussianMoments early_scaled = transforms.early.apply(early_.moments);
  const Matrix late_scaled = transforms.late.apply(late_samples);

  BmfResult result = estimate_scaled(early_scaled, late_scaled, config_.cv);
  result.moments = transforms.late.invert(result.scaled_moments);
  return result;
}

BmfResult BmfEstimator::do_estimate_stats(const SufficientStats& late_stats,
                                          const Vector& late_nominal) const {
  BMFUSION_REQUIRE(late_stats.dimension() == early_.moments.dimension(),
                   "late statistics must match the early-stage dimension");

  if (!config_.apply_shift_scale) {
    return estimate_scaled(early_.moments, {late_stats}, config_.cv,
                           HyperSelection::kEvidence);
  }
  const StageTransforms& transforms = transforms_for(late_nominal);
  const GaussianMoments early_scaled = transforms.early.apply(early_.moments);
  // A single pre-summarized batch cannot be folded, so selection is by
  // evidence regardless of config().selection.
  BmfResult result =
      estimate_scaled(early_scaled, {transforms.late.apply(late_stats)},
                      config_.cv, HyperSelection::kEvidence);
  result.moments = transforms.late.invert(result.scaled_moments);
  return result;
}

BmfResult BmfEstimator::do_snapshot(
    const std::vector<SufficientStats>& fold_totals,
    const Vector& late_nominal) const {
  // Fold totals arrive already normalized (stream_transform applied on
  // entry), so selection + fusion run in the same scaled space — and
  // through the same core — as the batch path.
  if (!config_.apply_shift_scale) {
    return estimate_scaled(early_.moments, fold_totals, config_.cv,
                           config_.selection);
  }
  const StageTransforms& transforms = transforms_for(late_nominal);
  const GaussianMoments early_scaled = transforms.early.apply(early_.moments);
  BmfResult result =
      estimate_scaled(early_scaled, fold_totals, config_.cv,
                      config_.selection);
  result.moments = transforms.late.invert(result.scaled_moments);
  return result;
}

}  // namespace bmfusion::core
