#include "core/bmf_estimator.hpp"

#include "common/contracts.hpp"
#include "core/normal_wishart.hpp"

namespace bmfusion::core {

using linalg::Matrix;
using linalg::Vector;

BmfEstimator::BmfEstimator(EarlyStageKnowledge early, BmfConfig config)
    : early_(std::move(early)), config_(std::move(config)) {
  early_.moments.validate();
  config_.validate();
  BMFUSION_REQUIRE(early_.nominal.size() == early_.moments.dimension(),
                   "early nominal must match the moment dimension");
}

ShiftScale BmfEstimator::late_transform(const Vector& late_nominal) const {
  return make_stage_transforms(early_.nominal, late_nominal, early_.moments)
      .late;
}

GaussianMoments BmfEstimator::fuse_at(const GaussianMoments& early_scaled,
                                      const Matrix& late_scaled,
                                      double kappa0, double nu0) {
  early_scaled.validate();
  return map_fuse(early_scaled, SufficientStats::from_samples(late_scaled),
                  kappa0, nu0);
}

BmfResult BmfEstimator::estimate_scaled(const GaussianMoments& early_scaled,
                                        const Matrix& late_scaled,
                                        const CrossValidationConfig& cv) {
  CrossValidationResult selected;
  try {
    selected = select_hyperparameters(early_scaled, late_scaled, cv);
  } catch (const NumericError& e) {
    // Re-state the failure at the estimator boundary with the problem size;
    // the nested message keeps the grid-level detail.
    throw NumericError("bmf: hyper-parameter selection failed",
                       ErrorContext{}
                           .with_operation("bmf-estimate")
                           .with_dimension(early_scaled.dimension())
                           .with_sample_count(late_scaled.rows())
                           .with_detail(e.what()));
  }
  BmfResult result;
  result.kappa0 = selected.kappa0;
  result.nu0 = selected.nu0;
  result.score = selected.score;
  result.cv_grid = selected.grid();
  result.scaled_moments =
      fuse_at(early_scaled, late_scaled, selected.kappa0, selected.nu0);
  result.moments = result.scaled_moments;  // identical when no transform
  return result;
}

BmfResult BmfEstimator::do_estimate(const Matrix& late_samples,
                                    const Vector& late_nominal) const {
  BMFUSION_REQUIRE(late_samples.cols() == early_.moments.dimension(),
                   "late samples must match the early-stage dimension");
  BMFUSION_REQUIRE(late_samples.rows() >= 2,
                   "bmf estimation needs >= 2 late-stage samples");

  if (!config_.apply_shift_scale) {
    BmfResult result =
        estimate_scaled(early_.moments, late_samples, config_.cv);
    return result;
  }

  BMFUSION_REQUIRE(late_nominal.size() == early_.moments.dimension(),
                   "bmf shift/scale needs a late-stage nominal point");
  const StageTransforms transforms =
      make_stage_transforms(early_.nominal, late_nominal, early_.moments);
  const GaussianMoments early_scaled = transforms.early.apply(early_.moments);
  const Matrix late_scaled = transforms.late.apply(late_samples);

  BmfResult result = estimate_scaled(early_scaled, late_scaled, config_.cv);
  result.moments = transforms.late.invert(result.scaled_moments);
  return result;
}

}  // namespace bmfusion::core
