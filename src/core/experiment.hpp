// Repeated-run moment-estimation experiment — the machinery behind the
// paper's Figures 4 and 5.
//
// Given full early- and late-stage Monte-Carlo populations plus the two
// nominal runs, the harness:
//   1. builds the Section 4.1 transforms and moves everything to scaled
//      space (the paper computes its errors there),
//   2. treats the full late population's moments as "exact",
//   3. for each sample size n and repetition r, draws n late samples
//      without replacement, runs MLE and BMF (optionally univariate BMF),
//      and records the eq. 37/38 errors,
//   4. averages errors over repetitions per sample size.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/dataset.hpp"
#include "core/bmf_estimator.hpp"
#include "core/moments.hpp"

namespace bmfusion::core {

struct ExperimentConfig {
  std::vector<std::size_t> sample_sizes{8, 16, 32, 64, 128, 256, 512};
  std::size_t repetitions = 100;  ///< paper: "100 repeated runs"
  std::uint64_t seed = 2015;
  CrossValidationConfig cv;
  bool include_univariate = false;  ///< also run the per-metric baseline
  std::size_t threads = 0;          ///< parallelism over repetitions
};

/// Averaged errors at one sample size (with standard errors of the means
/// over the repetition set, for error bars).
struct ExperimentRow {
  std::size_t n = 0;
  double mle_mean_error = 0.0;
  double mle_cov_error = 0.0;
  double bmf_mean_error = 0.0;
  double bmf_cov_error = 0.0;
  double mle_mean_stderr = 0.0;
  double mle_cov_stderr = 0.0;
  double bmf_mean_stderr = 0.0;
  double bmf_cov_stderr = 0.0;
  double uni_mean_error = 0.0;  ///< NaN when univariate disabled
  double uni_cov_error = 0.0;   ///< NaN when univariate disabled
  double median_kappa0 = 0.0;   ///< median selected hyper-parameter
  double median_nu0 = 0.0;
};

struct ExperimentResult {
  std::vector<ExperimentRow> rows;
  GaussianMoments exact_scaled;   ///< ground-truth late moments (scaled)
  GaussianMoments early_scaled;   ///< prior knowledge (scaled)
};

/// Cost-reduction factor for one BMF row: how many MLE samples reach the
/// same error as BMF does with `row.n` samples (log-log interpolation along
/// the MLE curve; extrapolates at the ends). `use_cov` selects the
/// covariance (true) or mean (false) error curve.
[[nodiscard]] double cost_reduction_factor(
    const std::vector<ExperimentRow>& rows, std::size_t n, bool use_cov);

/// The experiment itself, bound to one early/late dataset pair.
class MomentExperiment {
 public:
  MomentExperiment(circuit::Dataset early, linalg::Vector early_nominal,
                   circuit::Dataset late, linalg::Vector late_nominal);

  [[nodiscard]] ExperimentResult run(const ExperimentConfig& config) const;

  /// Scaled late-stage population (for diagnostics/tests).
  [[nodiscard]] const linalg::Matrix& late_scaled() const {
    return late_scaled_;
  }
  [[nodiscard]] const GaussianMoments& exact_scaled() const {
    return exact_scaled_;
  }
  [[nodiscard]] const GaussianMoments& early_scaled() const {
    return early_scaled_;
  }

 private:
  linalg::Matrix late_scaled_;
  GaussianMoments early_scaled_;
  GaussianMoments exact_scaled_;
};

}  // namespace bmfusion::core
