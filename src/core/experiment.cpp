#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "core/estimator.hpp"
#include "core/mle.hpp"
#include "core/univariate_bmf.hpp"
#include "stats/descriptive.hpp"
#include "stats/moments.hpp"
#include "stats/rng.hpp"

namespace bmfusion::core {

using linalg::Matrix;
using linalg::Vector;

MomentExperiment::MomentExperiment(circuit::Dataset early,
                                   Vector early_nominal,
                                   circuit::Dataset late,
                                   Vector late_nominal) {
  BMFUSION_REQUIRE(early.metric_count() == late.metric_count(),
                   "early/late datasets must share metrics");
  BMFUSION_REQUIRE(early.sample_count() > early.metric_count(),
                   "early dataset too small for moment estimation");
  BMFUSION_REQUIRE(late.sample_count() > late.metric_count(),
                   "late dataset too small for ground truth");

  const GaussianMoments early_raw = estimate_mle(early.samples());
  const StageTransforms transforms =
      make_stage_transforms(early_nominal, late_nominal, early_raw);
  early_scaled_ = transforms.early.apply(early_raw);
  late_scaled_ = transforms.late.apply(late.samples());
  exact_scaled_ = estimate_mle(late_scaled_);
}

namespace {

/// Draws `n` distinct row indices from [0, total) via partial Fisher-Yates.
std::vector<std::size_t> draw_subset(stats::Xoshiro256pp& rng, std::size_t n,
                                     std::size_t total) {
  std::vector<std::size_t> pool(total);
  for (std::size_t i = 0; i < total; ++i) pool[i] = i;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.next_below(
                                  static_cast<std::uint64_t>(total - i)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(n);
  return pool;
}

Matrix gather_rows(const Matrix& samples,
                   const std::vector<std::size_t>& rows) {
  Matrix out(rows.size(), samples.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out.set_row(i, samples.row(rows[i]));
  }
  return out;
}

}  // namespace

ExperimentResult MomentExperiment::run(const ExperimentConfig& config) const {
  BMFUSION_REQUIRE(!config.sample_sizes.empty(),
                   "experiment needs at least one sample size");
  BMFUSION_REQUIRE(config.repetitions >= 1, "experiment needs >= 1 run");
  const std::size_t total = late_scaled_.rows();
  for (const std::size_t n : config.sample_sizes) {
    BMFUSION_REQUIRE(n >= 2 && n <= total,
                     "sample size out of range of the late dataset");
  }

  ExperimentResult result;
  result.exact_scaled = exact_scaled_;
  result.early_scaled = early_scaled_;
  result.rows.reserve(config.sample_sizes.size());
  const double nan = std::numeric_limits<double>::quiet_NaN();

  // All strategies behind the unified interface, built once and shared by
  // every repetition (estimate() is const and thread-safe). The experiment
  // works in scaled space throughout, so BMF runs with shift/scale off and
  // the univariate baseline is bound to the scaled early moments directly.
  const MleEstimator mle_estimator;
  const BmfEstimator bmf_estimator(
      EarlyStageKnowledge{early_scaled_, early_scaled_.mean},
      BmfConfig{}.with_cv(config.cv).with_shift_scale(false));
  const UnivariateBmfEstimator uni_estimator(early_scaled_, config.cv);

  for (std::size_t size_idx = 0; size_idx < config.sample_sizes.size();
       ++size_idx) {
    const std::size_t n = config.sample_sizes[size_idx];
    const std::size_t reps = config.repetitions;
    std::vector<double> mle_mean(reps), mle_cov(reps);
    std::vector<double> bmf_mean(reps), bmf_cov(reps);
    std::vector<double> uni_mean(reps), uni_cov(reps);
    std::vector<double> kappas(reps), nus(reps);

    parallel_for(
        reps,
        [&](std::size_t r) {
          // One deterministic stream per (size, repetition).
          stats::SplitMix64 mixer(config.seed ^
                                  (size_idx * 0x9E3779B97F4A7C15ULL + r));
          stats::Xoshiro256pp rng(mixer.next());
          const Matrix subset =
              gather_rows(late_scaled_, draw_subset(rng, n, total));

          const EstimateResult mle = mle_estimator.estimate(subset);
          mle_mean[r] = mean_error(mle.moments.mean, exact_scaled_.mean);
          mle_cov[r] = covariance_error(mle.moments.covariance,
                                        exact_scaled_.covariance);

          const EstimateResult bmf = bmf_estimator.estimate(subset);
          bmf_mean[r] = mean_error(bmf.scaled_moments.mean,
                                   exact_scaled_.mean);
          bmf_cov[r] = covariance_error(bmf.scaled_moments.covariance,
                                        exact_scaled_.covariance);
          kappas[r] = bmf.kappa0;
          nus[r] = bmf.nu0;

          if (config.include_univariate) {
            const EstimateResult uni = uni_estimator.estimate(subset);
            uni_mean[r] = mean_error(uni.moments.mean, exact_scaled_.mean);
            uni_cov[r] = covariance_error(uni.moments.covariance,
                                          exact_scaled_.covariance);
          }
        },
        config.threads);

    const auto stderr_of = [](const std::vector<double>& v) {
      if (v.size() < 2) return 0.0;
      return stats::stddev_of(v) / std::sqrt(static_cast<double>(v.size()));
    };
    ExperimentRow row;
    row.n = n;
    row.mle_mean_error = stats::mean_of(mle_mean);
    row.mle_cov_error = stats::mean_of(mle_cov);
    row.bmf_mean_error = stats::mean_of(bmf_mean);
    row.bmf_cov_error = stats::mean_of(bmf_cov);
    row.mle_mean_stderr = stderr_of(mle_mean);
    row.mle_cov_stderr = stderr_of(mle_cov);
    row.bmf_mean_stderr = stderr_of(bmf_mean);
    row.bmf_cov_stderr = stderr_of(bmf_cov);
    row.uni_mean_error =
        config.include_univariate ? stats::mean_of(uni_mean) : nan;
    row.uni_cov_error =
        config.include_univariate ? stats::mean_of(uni_cov) : nan;
    row.median_kappa0 = stats::median(kappas);
    row.median_nu0 = stats::median(nus);
    result.rows.push_back(row);
  }
  return result;
}

double cost_reduction_factor(const std::vector<ExperimentRow>& rows,
                             std::size_t n, bool use_cov) {
  BMFUSION_REQUIRE(rows.size() >= 2, "cost reduction needs >= 2 rows");
  const ExperimentRow* target = nullptr;
  for (const ExperimentRow& row : rows) {
    if (row.n == n) target = &row;
  }
  BMFUSION_REQUIRE(target != nullptr, "sample size not present in rows");
  const double bmf_err =
      use_cov ? target->bmf_cov_error : target->bmf_mean_error;

  // Walk the MLE curve (errors decrease with n) and log-log interpolate the
  // n at which MLE first matches bmf_err.
  const auto mle_err = [&](const ExperimentRow& row) {
    return use_cov ? row.mle_cov_error : row.mle_mean_error;
  };
  if (mle_err(rows.front()) <= bmf_err) {
    // MLE already at least as good at the smallest n measured.
    return static_cast<double>(rows.front().n) / static_cast<double>(n);
  }
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const double e0 = mle_err(rows[i - 1]);
    const double e1 = mle_err(rows[i]);
    if (e0 > bmf_err && e1 <= bmf_err) {
      const double t =
          (std::log(bmf_err) - std::log(e0)) / (std::log(e1) - std::log(e0));
      const double log_n = std::log(static_cast<double>(rows[i - 1].n)) +
                           t * (std::log(static_cast<double>(rows[i].n)) -
                                std::log(static_cast<double>(rows[i - 1].n)));
      return std::exp(log_n) / static_cast<double>(n);
    }
  }
  // MLE never reaches the BMF error inside the sweep: extrapolate along the
  // last segment's slope.
  const ExperimentRow& a = rows[rows.size() - 2];
  const ExperimentRow& b = rows.back();
  const double slope =
      (std::log(mle_err(b)) - std::log(mle_err(a))) /
      (std::log(static_cast<double>(b.n)) -
       std::log(static_cast<double>(a.n)));
  if (slope >= 0.0) return std::numeric_limits<double>::infinity();
  const double log_n = std::log(static_cast<double>(b.n)) +
                       (std::log(bmf_err) - std::log(mle_err(b))) / slope;
  return std::exp(log_n) / static_cast<double>(n);
}

}  // namespace bmfusion::core
