// Maximum-likelihood moment estimation — the paper's baseline (eqs. 10-11).
#pragma once

#include "core/moments.hpp"
#include "linalg/matrix.hpp"

namespace bmfusion::core {

/// MLE of the mean vector and covariance matrix from the rows of `samples`
/// (paper eqs. 10 and 11, the 1/n covariance normalization). The covariance
/// of fewer samples than dimensions is rank deficient; this function still
/// returns it (callers that need SPD must regularize), matching what the
/// paper's baseline would compute.
[[nodiscard]] GaussianMoments estimate_mle(const linalg::Matrix& samples);

/// The same estimate from precomputed sufficient statistics: mean = sum/n,
/// covariance = scatter/n. Mathematically identical to the matrix overload;
/// numerically the uncentered accumulation can cancel when |mean| dwarfs
/// the spread (the price of never materializing the samples). This is the
/// streaming snapshot path.
[[nodiscard]] GaussianMoments estimate_mle(const SufficientStats& stats);

}  // namespace bmfusion::core
