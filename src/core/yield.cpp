#include "core/yield.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "stats/mvn.hpp"
#include "stats/special.hpp"

namespace bmfusion::core {

using linalg::Matrix;
using linalg::Vector;

void SpecBox::validate() const {
  BMFUSION_REQUIRE(lower.size() == upper.size(), "spec box size mismatch");
  BMFUSION_REQUIRE(lower.size() >= 1, "spec box needs dimension >= 1");
  for (std::size_t i = 0; i < lower.size(); ++i) {
    BMFUSION_REQUIRE(lower[i] <= upper[i],
                     "spec box lower bound exceeds upper bound");
  }
}

bool SpecBox::contains(const Vector& x) const {
  BMFUSION_REQUIRE(x.size() == dimension(), "spec box dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < lower[i] || x[i] > upper[i]) return false;
  }
  return true;
}

SpecBox SpecBox::unconstrained(std::size_t d) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  return SpecBox{Vector(d, -inf), Vector(d, inf)};
}

YieldEstimate::Interval YieldEstimate::wilson_interval(double level) const {
  BMFUSION_REQUIRE(level > 0.0 && level < 1.0,
                   "confidence level must lie in (0, 1)");
  BMFUSION_REQUIRE(sample_count >= 1, "interval needs samples");
  const double z =
      stats::standard_normal_quantile(0.5 * (1.0 + level));
  const double n = static_cast<double>(sample_count);
  const double p = yield;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  Interval iv;
  iv.lower = std::max(0.0, center - half);
  iv.upper = std::min(1.0, center + half);
  return iv;
}

namespace {

YieldEstimate from_counts(std::size_t pass, std::size_t total) {
  YieldEstimate est;
  est.sample_count = total;
  est.yield = static_cast<double>(pass) / static_cast<double>(total);
  est.standard_error =
      std::sqrt(est.yield * (1.0 - est.yield) / static_cast<double>(total));
  return est;
}

}  // namespace

YieldEstimate estimate_yield(const GaussianMoments& moments,
                             const SpecBox& specs, stats::Xoshiro256pp& rng,
                             std::size_t sample_count) {
  moments.validate();
  specs.validate();
  BMFUSION_REQUIRE(specs.dimension() == moments.dimension(),
                   "spec box must match the moment dimension");
  BMFUSION_REQUIRE(sample_count >= 1, "yield needs >= 1 sample");
  const stats::MultivariateNormal mvn(moments.mean, moments.covariance);
  std::size_t pass = 0;
  for (std::size_t i = 0; i < sample_count; ++i) {
    if (specs.contains(mvn.sample(rng))) ++pass;
  }
  return from_counts(pass, sample_count);
}

ImportanceSamplingResult estimate_yield_importance(
    const GaussianMoments& moments, const SpecBox& specs,
    stats::Xoshiro256pp& rng, std::size_t sample_count) {
  moments.validate();
  specs.validate();
  BMFUSION_REQUIRE(specs.dimension() == moments.dimension(),
                   "spec box must match the moment dimension");
  BMFUSION_REQUIRE(sample_count >= 2, "importance sampling needs >= 2");

  // Dominant failure face: the finite bound with the smallest single-face
  // Mahalanobis distance (bound - mu_i)^2 / Sigma_ii. The shift point is
  // the conditional mean of X given x_i = bound, which is the
  // minimum-Mahalanobis point on that hyperplane.
  const std::size_t d = moments.dimension();
  double best_dist = std::numeric_limits<double>::infinity();
  std::ptrdiff_t best_face = -1;
  double best_bound = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    for (const double bound : {specs.lower[i], specs.upper[i]}) {
      if (!std::isfinite(bound)) continue;
      const double dist = (bound - moments.mean[i]) * (bound - moments.mean[i]) /
                          moments.covariance(i, i);
      if (dist < best_dist) {
        best_dist = dist;
        best_face = static_cast<std::ptrdiff_t>(i);
        best_bound = bound;
      }
    }
  }
  BMFUSION_REQUIRE(best_face >= 0,
                   "importance sampling needs at least one finite spec");

  const auto face = static_cast<std::size_t>(best_face);
  const double scale = (best_bound - moments.mean[face]) /
                       moments.covariance(face, face);
  Vector shift = moments.mean;
  for (std::size_t j = 0; j < d; ++j) {
    shift[j] += scale * moments.covariance(j, face);
  }

  const stats::MultivariateNormal nominal(moments.mean, moments.covariance);
  const stats::MultivariateNormal shifted(shift, moments.covariance);
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  for (std::size_t k = 0; k < sample_count; ++k) {
    const Vector x = shifted.sample(rng);
    if (specs.contains(x)) continue;
    const double w = std::exp(nominal.log_pdf(x) - shifted.log_pdf(x));
    sum_w += w;
    sum_w2 += w * w;
  }
  const double n = static_cast<double>(sample_count);
  ImportanceSamplingResult result;
  result.failure_probability = sum_w / n;
  result.yield = 1.0 - result.failure_probability;
  const double var =
      std::max(0.0, sum_w2 / n -
                        result.failure_probability *
                            result.failure_probability) /
      n;
  result.standard_error = std::sqrt(var);
  result.shift_point = std::move(shift);
  result.sample_count = sample_count;
  return result;
}

YieldEstimate empirical_yield(const Matrix& samples, const SpecBox& specs) {
  specs.validate();
  BMFUSION_REQUIRE(samples.rows() >= 1, "yield needs >= 1 sample");
  BMFUSION_REQUIRE(samples.cols() == specs.dimension(),
                   "spec box must match the sample dimension");
  std::size_t pass = 0;
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    if (specs.contains(samples.row(i))) ++pass;
  }
  return from_counts(pass, samples.rows());
}

}  // namespace bmfusion::core
