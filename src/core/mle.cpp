#include "core/mle.hpp"

#include "common/contracts.hpp"
#include "stats/moments.hpp"

namespace bmfusion::core {

GaussianMoments estimate_mle(const linalg::Matrix& samples) {
  BMFUSION_REQUIRE(samples.rows() >= 1, "mle needs at least one sample");
  GaussianMoments moments;
  moments.mean = stats::sample_mean(samples);
  moments.covariance = stats::sample_covariance_mle(samples);
  return moments;
}

GaussianMoments estimate_mle(const SufficientStats& stats) {
  BMFUSION_REQUIRE(stats.count() >= 1, "mle needs at least one sample");
  GaussianMoments moments;
  moments.mean = stats.mean();
  moments.covariance =
      stats.scatter() / static_cast<double>(stats.count());
  return moments;
}

}  // namespace bmfusion::core
