#include "core/estimator.hpp"

#include "common/contracts.hpp"
#include "core/mle.hpp"

namespace bmfusion::core {

EstimateResult MomentEstimator::estimate(const linalg::Matrix& samples,
                                         const linalg::Vector& nominal) const {
  BMFUSION_REQUIRE(samples.rows() >= 1 && samples.cols() >= 1,
                   "moment estimation needs a non-empty sample matrix");
  BMFUSION_REQUIRE(nominal.size() == 0 || nominal.size() == samples.cols(),
                   "nominal must be empty or match the sample dimension");
  return do_estimate(samples, nominal);
}

EstimateResult MomentEstimator::estimate(const linalg::Matrix& samples) const {
  return estimate(samples, linalg::Vector());
}

EstimateResult MleEstimator::do_estimate(const linalg::Matrix& samples,
                                         const linalg::Vector& nominal) const {
  (void)nominal;  // the MLE neither shifts nor scales
  EstimateResult result;
  result.moments = estimate_mle(samples);
  result.scaled_moments = result.moments;
  return result;
}

}  // namespace bmfusion::core
