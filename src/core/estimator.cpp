#include "core/estimator.hpp"

#include <cmath>
#include <sstream>

#include "common/contracts.hpp"
#include "core/mle.hpp"
#include "telemetry/telemetry.hpp"

namespace bmfusion::core {

namespace {

/// API-boundary data screen shared by every estimator: a NaN/Inf cell in the
/// samples (or nominal) is a data problem, and is reported here with its
/// exact position instead of surfacing later as a numeric failure deep in
/// the fusion stack.
void require_finite_inputs(const linalg::Matrix& samples,
                           const linalg::Vector& nominal,
                           std::string_view estimator) {
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    for (std::size_t c = 0; c < samples.cols(); ++c) {
      const double cell = samples(r, c);
      if (!std::isfinite(cell)) {
        std::ostringstream os;
        os << "estimator '" << estimator << "': non-finite sample cell at row "
           << r << ", column " << c;
        throw DataError(os.str(), ErrorContext{}
                                      .with_operation(std::string(estimator))
                                      .with_dimension(samples.cols())
                                      .with_sample_count(samples.rows())
                                      .with_index(r)
                                      .with_value(cell));
      }
    }
  }
  for (std::size_t i = 0; i < nominal.size(); ++i) {
    if (!std::isfinite(nominal[i])) {
      std::ostringstream os;
      os << "estimator '" << estimator
         << "': non-finite nominal entry at dimension " << i;
      throw DataError(os.str(), ErrorContext{}
                                    .with_operation(std::string(estimator))
                                    .with_dimension(nominal.size())
                                    .with_index(i)
                                    .with_value(nominal[i]));
    }
  }
}

/// The same screen for one sample vector (the observe hot path).
void require_finite_sample(const linalg::Vector& sample,
                           std::string_view estimator) {
  for (std::size_t i = 0; i < sample.size(); ++i) {
    if (!std::isfinite(sample[i])) {
      std::ostringstream os;
      os << "estimator '" << estimator
         << "': non-finite observed sample entry at dimension " << i;
      throw DataError(os.str(), ErrorContext{}
                                    .with_operation(std::string(estimator))
                                    .with_dimension(sample.size())
                                    .with_index(i)
                                    .with_value(sample[i]));
    }
  }
}

/// And for pre-summarized statistics (the absorb path): a non-finite sum or
/// outer-sum entry poisons every later estimate, so reject it at the door.
void require_finite_stats(const SufficientStats& stats,
                          std::string_view estimator) {
  for (std::size_t r = 0; r < stats.dimension(); ++r) {
    if (!std::isfinite(stats.sum()[r])) {
      std::ostringstream os;
      os << "estimator '" << estimator
         << "': non-finite sufficient-stats sum at dimension " << r;
      throw DataError(os.str(), ErrorContext{}
                                    .with_operation(std::string(estimator))
                                    .with_dimension(stats.dimension())
                                    .with_sample_count(stats.count())
                                    .with_index(r)
                                    .with_value(stats.sum()[r]));
    }
    for (std::size_t c = 0; c < stats.dimension(); ++c) {
      const double cell = stats.sum_outer()(r, c);
      if (!std::isfinite(cell)) {
        std::ostringstream os;
        os << "estimator '" << estimator
           << "': non-finite sufficient-stats outer sum at (" << r << ", "
           << c << ")";
        throw DataError(os.str(), ErrorContext{}
                                      .with_operation(std::string(estimator))
                                      .with_dimension(stats.dimension())
                                      .with_sample_count(stats.count())
                                      .with_index(r)
                                      .with_value(cell));
      }
    }
  }
}

}  // namespace

// --- Batch -----------------------------------------------------------------

EstimateResult MomentEstimator::estimate(const linalg::Matrix& samples,
                                         const linalg::Vector& nominal) const {
  BMFUSION_REQUIRE(samples.rows() >= 1 && samples.cols() >= 1,
                   "moment estimation needs a non-empty sample matrix");
  BMFUSION_REQUIRE(nominal.size() == 0 || nominal.size() == samples.cols(),
                   "nominal must be empty or match the sample dimension");
  require_finite_inputs(samples, nominal, name());
  return do_estimate(samples, nominal);
}

EstimateResult MomentEstimator::estimate(const linalg::Matrix& samples) const {
  return estimate(samples, linalg::Vector());
}

// --- Stats-only -------------------------------------------------------------

EstimateResult MomentEstimator::estimate(const SufficientStats& stats,
                                         const linalg::Vector& nominal) const {
  BMFUSION_REQUIRE(stats.count() >= 1 && stats.dimension() >= 1,
                   "moment estimation needs non-empty sufficient statistics");
  BMFUSION_REQUIRE(nominal.size() == 0 || nominal.size() == stats.dimension(),
                   "nominal must be empty or match the stats dimension");
  require_finite_stats(stats, name());
  require_finite_inputs(linalg::Matrix(), nominal, name());
  return do_estimate_stats(stats, nominal);
}

EstimateResult MomentEstimator::estimate(const SufficientStats& stats) const {
  return estimate(stats, linalg::Vector());
}

EstimateResult MomentEstimator::do_estimate_stats(
    const SufficientStats& stats, const linalg::Vector& nominal) const {
  (void)stats;
  (void)nominal;
  throw ContractError(std::string("estimator '") + std::string(name()) +
                      "' does not support estimation from sufficient "
                      "statistics");
}

// --- Streaming ---------------------------------------------------------------

void MomentEstimator::set_nominal(const linalg::Vector& nominal) {
  BMFUSION_REQUIRE(observed_ == 0,
                   "the nominal point is fixed once samples were observed; "
                   "reset_stream() first");
  BMFUSION_REQUIRE(nominal.size() >= 1,
                   "set_nominal needs a non-empty nominal vector");
  require_finite_inputs(linalg::Matrix(), nominal, name());
  nominal_ = nominal;
  on_nominal_changed();
}

void MomentEstimator::ensure_streams(std::size_t dimension) {
  BMFUSION_REQUIRE(nominal_.size() == 0 || nominal_.size() == dimension,
                   "observed sample dimension must match the nominal point");
  if (streams_.empty()) {
    const std::size_t folds = stream_folds();
    BMFUSION_REQUIRE(folds >= 1, "estimator stream needs >= 1 fold");
    streams_.assign(folds, stats::StatStream(dimension));
    return;
  }
  BMFUSION_REQUIRE(streams_.front().dimension() == dimension,
                   "observed sample dimension must match the stream");
}

void MomentEstimator::observe_row(const linalg::Vector& sample) {
  BMFUSION_REQUIRE(sample.size() >= 1, "observe needs a non-empty sample");
  require_finite_sample(sample, name());
  ensure_streams(sample.size());
  streams_[observed_ % streams_.size()].add(stream_transform(sample));
  ++observed_;
}

void MomentEstimator::observe(const linalg::Vector& sample) {
  observe_row(sample);
  BMF_COUNTER_ADD("core.stream.observed_samples", 1);
}

void MomentEstimator::observe(const linalg::Matrix& samples) {
  BMFUSION_REQUIRE(samples.cols() >= 1,
                   "observe needs samples with dimension >= 1");
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    observe_row(samples.row(i));
  }
  // One counter update per batch, not per row: the serve observe hot path
  // pushes 10k+ batches/s, where per-row updates are measurable.
  BMF_COUNTER_ADD("core.stream.observed_samples", samples.rows());
}

void MomentEstimator::absorb(const SufficientStats& stats) {
  if (stats.count() == 0) return;
  BMFUSION_REQUIRE(stats.dimension() >= 1,
                   "absorb needs statistics with dimension >= 1");
  require_finite_stats(stats, name());
  ensure_streams(stats.dimension());
  streams_[absorb_cursor_ % streams_.size()].absorb(
      stream_transform_stats(stats));
  ++absorb_cursor_;
  observed_ += stats.count();
  BMF_COUNTER_ADD("core.stream.absorbed_samples", stats.count());
}

void MomentEstimator::absorb(const stats::StatsShard& shard) {
  if (!shard.estimator.empty() && shard.estimator != name()) {
    throw DataError(
        "stats shard estimator tag does not match this estimator",
        ErrorContext{}
            .with_operation(std::string(name()))
            .with_detail("shard tagged '" + shard.estimator + "'"));
  }
  if (shard.nominal.size() != 0) {
    if (nominal_.size() == 0) {
      if (observed_ == 0) {
        set_nominal(shard.nominal);
      }
    } else if (!(shard.nominal == nominal_)) {
      throw DataError("stats shard nominal does not match this estimator's",
                      ErrorContext{}
                          .with_operation(std::string(name()))
                          .with_dimension(nominal_.size()));
    }
  }
  const std::size_t dim = shard.dimension();
  if (dim == 0) return;  // empty shard: nothing to merge
  if (!streams_.empty() && streams_.front().dimension() != dim) {
    throw DataError(
        "stats shard dimension does not match this estimator",
        ErrorContext{}
            .with_operation(std::string(name()))
            .with_dimension(streams_.front().dimension())
            .with_detail("shard " + std::to_string(shard.shard_id) +
                         " carries dimension " + std::to_string(dim)));
  }
  ensure_streams(dim);
  if (shard.folds.size() != streams_.size()) {
    throw DataError("stats shard fold count does not match this estimator",
                    ErrorContext{}
                        .with_operation(std::string(name()))
                        .with_detail(std::to_string(streams_.size()) +
                                     " folds here, shard has " +
                                     std::to_string(shard.folds.size())));
  }
  std::size_t added = 0;
  for (std::size_t f = 0; f < streams_.size(); ++f) {
    streams_[f].merge(shard.folds[f]);
    added += shard.folds[f].count();
  }
  observed_ += added;
  BMF_COUNTER_ADD("core.stream.absorbed_samples", added);
}

void MomentEstimator::merge(const MomentEstimator& other) {
  BMFUSION_REQUIRE(name() == other.name(),
                   "merge needs two estimators of the same strategy");
  BMFUSION_REQUIRE(
      nominal_.size() == other.nominal_.size() &&
          (nominal_.size() == 0 || nominal_ == other.nominal_),
      "merge needs both estimators to agree on the nominal point");
  if (other.observed_ == 0) return;
  ensure_streams(other.streams_.front().dimension());
  BMFUSION_REQUIRE(streams_.size() == other.streams_.size(),
                   "merge needs matching fold counts");
  for (std::size_t f = 0; f < streams_.size(); ++f) {
    streams_[f].merge(other.streams_[f]);
  }
  observed_ += other.observed_;
}

EstimateResult MomentEstimator::snapshot() const {
  BMFUSION_REQUIRE(observed_ >= 1,
                   "snapshot needs at least one observed sample");
  const std::size_t dim = streams_.front().dimension();
  std::vector<SufficientStats> fold_totals;
  fold_totals.reserve(streams_.size());
  for (const stats::StatStream& stream : streams_) {
    fold_totals.push_back(stream.empty() ? SufficientStats(dim)
                                         : stream.totals());
  }
  BMF_SPAN("estimator_snapshot");
  BMF_COUNTER_ADD("core.stream.snapshots", 1);
  return do_snapshot(fold_totals, nominal_);
}

stats::StatsShard MomentEstimator::export_shard(std::uint64_t shard_id) const {
  stats::StatsShard shard;
  shard.shard_id = shard_id;
  shard.estimator = std::string(name());
  shard.nominal = nominal_;
  shard.folds = streams_.empty()
                    ? std::vector<stats::StatStream>(stream_folds())
                    : streams_;
  return shard;
}

void MomentEstimator::reset_stream() {
  streams_.clear();
  observed_ = 0;
  absorb_cursor_ = 0;
}

EstimateResult MomentEstimator::do_snapshot(
    const std::vector<SufficientStats>& fold_totals,
    const linalg::Vector& nominal) const {
  (void)fold_totals;
  (void)nominal;
  throw ContractError(std::string("estimator '") + std::string(name()) +
                      "' does not support streaming estimation");
}

linalg::Vector MomentEstimator::stream_transform(
    const linalg::Vector& sample) const {
  return sample;
}

SufficientStats MomentEstimator::stream_transform_stats(
    const SufficientStats& stats) const {
  return stats;
}

// --- MLE ---------------------------------------------------------------------

EstimateResult MleEstimator::do_estimate(const linalg::Matrix& samples,
                                         const linalg::Vector& nominal) const {
  (void)nominal;  // the MLE neither shifts nor scales
  EstimateResult result;
  result.moments = estimate_mle(samples);
  result.scaled_moments = result.moments;
  return result;
}

EstimateResult MleEstimator::do_estimate_stats(
    const SufficientStats& stats, const linalg::Vector& nominal) const {
  (void)nominal;
  EstimateResult result;
  result.moments = estimate_mle(stats);
  result.scaled_moments = result.moments;
  return result;
}

EstimateResult MleEstimator::do_snapshot(
    const std::vector<SufficientStats>& fold_totals,
    const linalg::Vector& nominal) const {
  // Single-fold stream (stream_folds() == 1), but stay robust to a caller-
  // assembled fold vector: the MLE only needs the grand totals.
  SufficientStats totals;
  bool have = false;
  for (const SufficientStats& fold : fold_totals) {
    if (fold.count() == 0) continue;
    if (!have) {
      totals = fold;
      have = true;
    } else {
      totals += fold;
    }
  }
  BMFUSION_REQUIRE(have, "mle snapshot needs >= 1 observed sample");
  return do_estimate_stats(totals, nominal);
}

}  // namespace bmfusion::core
