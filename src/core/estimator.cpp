#include "core/estimator.hpp"

#include <cmath>
#include <sstream>

#include "common/contracts.hpp"
#include "core/mle.hpp"

namespace bmfusion::core {

namespace {

/// API-boundary data screen shared by every estimator: a NaN/Inf cell in the
/// samples (or nominal) is a data problem, and is reported here with its
/// exact position instead of surfacing later as a numeric failure deep in
/// the fusion stack.
void require_finite_inputs(const linalg::Matrix& samples,
                           const linalg::Vector& nominal,
                           std::string_view estimator) {
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    for (std::size_t c = 0; c < samples.cols(); ++c) {
      const double cell = samples(r, c);
      if (!std::isfinite(cell)) {
        std::ostringstream os;
        os << "estimator '" << estimator << "': non-finite sample cell at row "
           << r << ", column " << c;
        throw DataError(os.str(), ErrorContext{}
                                      .with_operation(std::string(estimator))
                                      .with_dimension(samples.cols())
                                      .with_sample_count(samples.rows())
                                      .with_index(r)
                                      .with_value(cell));
      }
    }
  }
  for (std::size_t i = 0; i < nominal.size(); ++i) {
    if (!std::isfinite(nominal[i])) {
      std::ostringstream os;
      os << "estimator '" << estimator
         << "': non-finite nominal entry at dimension " << i;
      throw DataError(os.str(), ErrorContext{}
                                    .with_operation(std::string(estimator))
                                    .with_dimension(nominal.size())
                                    .with_index(i)
                                    .with_value(nominal[i]));
    }
  }
}

}  // namespace

EstimateResult MomentEstimator::estimate(const linalg::Matrix& samples,
                                         const linalg::Vector& nominal) const {
  BMFUSION_REQUIRE(samples.rows() >= 1 && samples.cols() >= 1,
                   "moment estimation needs a non-empty sample matrix");
  BMFUSION_REQUIRE(nominal.size() == 0 || nominal.size() == samples.cols(),
                   "nominal must be empty or match the sample dimension");
  require_finite_inputs(samples, nominal, name());
  return do_estimate(samples, nominal);
}

EstimateResult MomentEstimator::estimate(const linalg::Matrix& samples) const {
  return estimate(samples, linalg::Vector());
}

EstimateResult MleEstimator::do_estimate(const linalg::Matrix& samples,
                                         const linalg::Vector& nominal) const {
  (void)nominal;  // the MLE neither shifts nor scales
  EstimateResult result;
  result.moments = estimate_mle(samples);
  result.scaled_moments = result.moments;
  return result;
}

}  // namespace bmfusion::core
