#include "core/diagnose.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/json.hpp"

namespace bmfusion::core {

namespace {

std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c); break;
    }
  }
  return out;
}

/// The counters the numeric-health section reports, in display order. A
/// counter absent from the snapshot is simply skipped, so older snapshots
/// stay ingestible.
constexpr const char* kHealthCounters[] = {
    "circuit.dc.solves",
    "circuit.dc.warm_start_hits",
    "circuit.dc.warm_start_misses",
    "circuit.dc.gmin_ladder_solves",
    "circuit.dc.source_step_solves",
    "circuit.dc.damped_ladder_solves",
    "circuit.dc.failures",
    "circuit.dc.newton_iterations",
    "circuit.mc.samples",
    "circuit.mc.elapsed_us",
    "circuit.mc.busy_us",
    "linalg.cholesky.jitter_activations",
    "linalg.cholesky.jitter_retries",
    "linalg.ldlt.pivot_clamps",
    "core.cv.selections",
    "core.cv.grid_points",
    "core.cv.disqualified_points",
    "core.loglik.fallback_jitter",
    "core.loglik.fallback_ldlt",
    "fusion.observed_samples",
    "fusion.absorbed_shards",
    "fusion.snapshots",
    "fusion.corner_samples",
    "serve.requests",
    "serve.observed_samples",
    "serve.errors",
    "serve.slow_requests",
    "serve.oversized_requests",
    "serve.slow_consumer_closes",
    "serve.connections",
    "serve.disconnects",
    "serve.admin.requests",
};

void ingest_snapshot_value(const JsonValue& snapshot,
                           const std::string& origin, RunReport& report,
                           const DoctorThresholds& thresholds) {
  const JsonValue* counters = snapshot.find("counters");
  if (counters == nullptr || !counters->is_object()) {
    throw DataError("telemetry snapshot has no counters object",
                    ErrorContext{}.with_operation("doctor-snapshot")
                        .with_detail(origin));
  }
  for (const char* name : kHealthCounters) {
    const JsonValue* value = counters->find(name);
    if (value != nullptr && value->is_number()) {
      report.health_counters.push_back({name, value->as_number()});
    }
  }

  const double hits = counters->number_or("circuit.dc.warm_start_hits", 0.0);
  const double misses =
      counters->number_or("circuit.dc.warm_start_misses", 0.0);
  if (hits + misses > 0.0) {
    report.warm_start_hit_rate = hits / (hits + misses);
  }

  const double grid_points = counters->number_or("core.cv.grid_points", 0.0);
  const double disqualified =
      counters->number_or("core.cv.disqualified_points", 0.0);
  if (grid_points > 0.0) {
    report.cv_disqualified_ratio = disqualified / grid_points;
    if (*report.cv_disqualified_ratio > thresholds.max_disqualified_ratio) {
      std::ostringstream os;
      os << "cv disqualified " << format_double(disqualified) << " of "
         << format_double(grid_points) << " grid points ("
         << format_double(100.0 * *report.cv_disqualified_ratio)
         << "%), above the " << format_double(
                100.0 * thresholds.max_disqualified_ratio)
         << "% threshold";
      report.findings.push_back(os.str());
    }
  }

  // Parallel Monte Carlo utilisation. busy_us sums each worker's wall time
  // inside sample bodies; elapsed_us is the run's wall time. A pool that
  // keeps every worker loaded puts busy at elapsed * threads, so the ratio
  // is the fraction of the run each worker spent with work assigned — it
  // drops on starvation or an imbalanced partition, and stays meaningful on
  // oversubscribed hosts where per-worker wall time overlaps (actual
  // speedup there is the bench sentinel's job, not the snapshot's).
  // Single-threaded runs are skipped — busy/elapsed is trivially ~1 and
  // says nothing about the pool.
  const JsonValue* gauges = snapshot.find("gauges");
  const double mc_busy = counters->number_or("circuit.mc.busy_us", 0.0);
  const double mc_elapsed = counters->number_or("circuit.mc.elapsed_us", 0.0);
  if (gauges != nullptr && gauges->is_object() && mc_elapsed > 0.0) {
    const double threads = gauges->number_or("circuit.mc.threads", 0.0);
    if (threads > 1.0) {
      report.mc_parallel_efficiency = mc_busy / (mc_elapsed * threads);
      if (*report.mc_parallel_efficiency <
          thresholds.min_mc_parallel_efficiency) {
        std::ostringstream os;
        os << "monte carlo parallel efficiency "
           << format_double(*report.mc_parallel_efficiency) << " on "
           << format_double(threads)
           << " thread(s): workers sat idle for a large fraction of the "
              "run, below the "
           << format_double(thresholds.min_mc_parallel_efficiency)
           << " floor";
        report.findings.push_back(os.str());
      }
    }
  }

  // Multi-population fusion state: present whenever a run drove a
  // MultiPopulationEstimator (gauge fusion.populations is set on every
  // joint snapshot). Per-population tallies come from the dynamic
  // fusion.population.<p>.samples gauges.
  if (gauges != nullptr && gauges->is_object()) {
    const double populations = gauges->number_or("fusion.populations", 0.0);
    if (populations > 0.0) {
      FusionSummary fusion;
      fusion.populations = static_cast<std::size_t>(populations);
      fusion.observed_populations = static_cast<std::size_t>(
          gauges->number_or("fusion.observed_populations", 0.0));
      fusion.signal_variance =
          gauges->number_or("fusion.signal_variance", 0.0);
      fusion.shrinkage = gauges->number_or("fusion.shrinkage_lambda", 0.0);
      fusion.mean_abs_correlation =
          gauges->number_or("fusion.mean_abs_correlation", 0.0);
      constexpr std::string_view kPrefix = "fusion.population.";
      constexpr std::string_view kSuffix = ".samples";
      for (const auto& [name, value] : gauges->as_object()) {
        if (name.size() <= kPrefix.size() + kSuffix.size() ||
            name.compare(0, kPrefix.size(), kPrefix) != 0 ||
            name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                         kSuffix) != 0 ||
            !value.is_number()) {
          continue;
        }
        const std::string digits = name.substr(
            kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos) {
          continue;
        }
        fusion.population_samples.emplace_back(std::stoul(digits),
                                               value.as_number());
      }
      std::sort(fusion.population_samples.begin(),
                fusion.population_samples.end());
      if (fusion.observed_populations < fusion.populations) {
        std::ostringstream os;
        os << "fusion: " << fusion.populations - fusion.observed_populations
           << " of " << fusion.populations
           << " population(s) had no usable samples at the last joint "
              "snapshot";
        report.findings.push_back(os.str());
      }
      report.fusion = std::move(fusion);
    }
  }

  const double failures = counters->number_or("circuit.dc.failures", 0.0);
  if (failures > 0.0) {
    report.findings.push_back("dc solver failed to converge " +
                              format_double(failures) + " time(s)");
  }
  const double damped =
      counters->number_or("circuit.dc.damped_ladder_solves", 0.0);
  if (damped > 0.0) {
    report.findings.push_back(
        "dc solver escalated to the damped (last-resort) ladder " +
        format_double(damped) + " time(s)");
  }
  const double ldlt_fallback =
      counters->number_or("core.loglik.fallback_ldlt", 0.0);
  if (ldlt_fallback > 0.0) {
    report.findings.push_back(
        "likelihood scoring hit the clamped-LDLT last resort " +
        format_double(ldlt_fallback) + " time(s)");
  }

  // Serve-plane state: surface every serve.* gauge (session counts,
  // per-loop connection/buffer/pipeline gauges) and flag recorded slow
  // requests.
  if (gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->as_object()) {
      if (name.rfind("serve.", 0) == 0 && value.is_number()) {
        report.serve_gauges.push_back({name, value.as_number()});
      }
    }
  }
  const double slow = counters->number_or("serve.slow_requests", 0.0);
  if (slow > 0.0) {
    report.findings.push_back(format_double(slow) +
                              " slow serve request(s) over the configured "
                              "--slow-request-us threshold");
  }

  const JsonValue* histograms = snapshot.find("histograms");
  if (histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, hist] : histograms->as_object()) {
      HistogramQuantiles q;
      q.name = name;
      q.count = static_cast<std::uint64_t>(hist.number_or("count", 0.0));
      q.p50 = hist.number_or("p50", 0.0);
      q.p95 = hist.number_or("p95", 0.0);
      q.p99 = hist.number_or("p99", 0.0);
      // Latency budget for the serve plane: per-op histograms record
      // microseconds, the threshold is in milliseconds.
      constexpr std::string_view kLatencySuffix = ".latency_us";
      if (thresholds.max_serve_p99_ms > 0.0 && q.count > 0 &&
          name.rfind("serve.", 0) == 0 && name.size() > kLatencySuffix.size() &&
          name.compare(name.size() - kLatencySuffix.size(),
                       kLatencySuffix.size(), kLatencySuffix) == 0 &&
          q.p99 > thresholds.max_serve_p99_ms * 1000.0) {
        std::ostringstream os;
        os << name << " p99 is " << format_double(q.p99 * 1e-3)
           << " ms, above the " << format_double(thresholds.max_serve_p99_ms)
           << " ms budget";
        report.findings.push_back(os.str());
      }
      report.histograms.push_back(std::move(q));
    }
  }
}

void ingest_snapshot(const std::string& path, RunReport& report,
                     const DoctorThresholds& thresholds) {
  ingest_snapshot_value(parse_json_file(path), path, report, thresholds);
}

void ingest_log(const std::string& path, RunReport& report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw DataError("cannot open log file",
                    ErrorContext{}.with_operation("doctor-log")
                        .with_detail(path));
  }
  LogSummary summary;
  std::string line;
  constexpr std::size_t kMaxRecent = 5;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue record;
    try {
      record = parse_json(line);
    } catch (const DataError&) {
      ++summary.malformed_lines;
      continue;
    }
    if (record.find("flight_recorder_dump") != nullptr) {
      ++summary.flight_dumps;
      continue;
    }
    ++summary.total;
    const std::string level = record.string_or("level", "");
    if (level == "debug") ++summary.debug;
    else if (level == "info") ++summary.info;
    else if (level == "warn") ++summary.warn;
    else if (level == "error") ++summary.error;
    const std::string msg = record.string_or("msg", "");
    if (msg == "error raised") ++summary.error_notifications;
    if (level == "warn" || level == "error") {
      if (summary.recent_warnings.size() >= kMaxRecent) {
        summary.recent_warnings.erase(summary.recent_warnings.begin());
      }
      summary.recent_warnings.push_back(level + ": " + msg);
    }
  }
  if (summary.error > 0) {
    report.findings.push_back(format_double(
                                  static_cast<double>(summary.error)) +
                              " error-level log event(s) recorded");
  }
  report.log_summary = std::move(summary);
}

void ingest_cv_surface(const std::string& path, RunReport& report) {
  const CsvTable table = read_csv_file(path, /*expect_header=*/true);
  if (table.column_count() < 3) {
    throw DataError("cv surface csv needs kappa0,nu0,score columns",
                    ErrorContext{}.with_operation("doctor-cv-surface")
                        .with_detail(path));
  }
  for (const auto& row : table.rows) {
    report.cv_surface.push_back({row[0], row[1], row[2]});
  }
  std::sort(report.cv_surface.begin(), report.cv_surface.end(),
            [](const CvSurfacePoint& a, const CvSurfacePoint& b) {
              return a.score > b.score;
            });
  if (!report.cv_surface.empty()) {
    report.cv_best = report.cv_surface.front();
  }
}

/// Finds the most recent prior record sharing the newest record's bench
/// name, so mixed histories (micro_circuit + micro_cv in one file) compare
/// like with like.
void ingest_bench(const std::string& path, RunReport& report,
                  const DoctorThresholds& thresholds) {
  const JsonValue history = parse_json_file(path);
  const auto& records = history.as_array();
  if (records.size() < 1) return;
  const JsonValue& newest = records.back();
  report.bench_label = newest.string_or("label", "(unlabeled)");
  const std::string bench_name = newest.string_or("bench", "");
  const JsonValue* previous = nullptr;
  for (std::size_t i = records.size() - 1; i-- > 0;) {
    if (records[i].string_or("bench", "") == bench_name) {
      previous = &records[i];
      break;
    }
  }
  if (previous == nullptr) return;

  const auto add_delta = [&](const std::string& metric, double prev,
                             double cur, bool higher_is_better,
                             double threshold_pct) {
    if (prev == 0.0) return;
    BenchDelta delta;
    delta.metric = metric;
    delta.previous = prev;
    delta.current = cur;
    delta.delta_pct = 100.0 * (cur - prev) / prev;
    const double harmful = higher_is_better ? -delta.delta_pct
                                            : delta.delta_pct;
    delta.regression = harmful > threshold_pct;
    if (delta.regression) {
      std::ostringstream os;
      os << "bench regression: " << metric << " went "
         << format_double(prev) << " -> " << format_double(cur) << " ("
         << (delta.delta_pct >= 0 ? "+" : "")
         << format_double(delta.delta_pct) << "%)";
      report.findings.push_back(os.str());
    }
    report.bench_deltas.push_back(delta);
  };

  const auto scan_object = [&](const char* key, bool higher_is_better,
                               double threshold_pct) {
    const JsonValue* cur_obj = newest.find(key);
    const JsonValue* prev_obj = previous->find(key);
    if (cur_obj == nullptr || prev_obj == nullptr || !cur_obj->is_object() ||
        !prev_obj->is_object()) {
      return;
    }
    for (const auto& [name, cur_value] : cur_obj->as_object()) {
      if (!cur_value.is_number()) continue;
      const JsonValue* prev_value = prev_obj->find(name);
      if (prev_value == nullptr || !prev_value->is_number()) continue;
      const bool throughput =
          higher_is_better || name.find("throughput") != std::string::npos;
      add_delta(std::string(key) + "." + name, prev_value->as_number(),
                cur_value.as_number(), throughput,
                throughput ? thresholds.max_throughput_drop_pct
                           : threshold_pct);
    }
  };

  scan_object("mc_opamp_postlayout", false, thresholds.max_time_rise_pct);
  scan_object("stages", false, thresholds.max_time_rise_pct);
  scan_object("real_time_ns", false, thresholds.max_time_rise_pct);

  // Flat scalar timings used by BENCH_cv.json records.
  for (const char* key : {"old_ms", "new_1t_ms", "new_mt_ms"}) {
    const JsonValue* cur_value = newest.find(key);
    const JsonValue* prev_value = previous->find(key);
    if (cur_value != nullptr && prev_value != nullptr &&
        cur_value->is_number() && prev_value->is_number()) {
      add_delta(key, prev_value->as_number(), cur_value->as_number(), false,
                thresholds.max_time_rise_pct);
    }
  }
}

void append_markdown_table_header(std::ostringstream& out,
                                  std::initializer_list<const char*> cols) {
  out << "|";
  for (const char* c : cols) out << ' ' << c << " |";
  out << "\n|";
  for (std::size_t i = 0; i < cols.size(); ++i) out << " --- |";
  out << "\n";
}

}  // namespace

std::string RunReport::to_markdown() const {
  std::ostringstream out;
  out << "# bmf_doctor run report\n\n";

  out << "## Verdict\n\n";
  if (findings.empty()) {
    out << "No findings: numeric health looks clean.\n\n";
  } else {
    for (const std::string& finding : findings) {
      out << "- **" << finding << "**\n";
    }
    out << "\n";
  }

  if (!health_counters.empty()) {
    out << "## Numeric health\n\n";
    append_markdown_table_header(out, {"counter", "value"});
    for (const CounterReading& c : health_counters) {
      out << "| " << c.name << " | " << format_double(c.value) << " |\n";
    }
    out << "\n";
    if (warm_start_hit_rate) {
      out << "Warm-start hit rate: "
          << format_double(100.0 * *warm_start_hit_rate) << "%\n\n";
    }
    if (cv_disqualified_ratio) {
      out << "CV disqualified ratio: "
          << format_double(100.0 * *cv_disqualified_ratio) << "%\n\n";
    }
    if (mc_parallel_efficiency) {
      out << "Monte Carlo parallel efficiency: "
          << format_double(100.0 * *mc_parallel_efficiency) << "%\n\n";
    }
  }

  if (!histograms.empty()) {
    out << "## Latency quantiles\n\n";
    append_markdown_table_header(out,
                                 {"histogram", "count", "p50", "p95", "p99"});
    for (const HistogramQuantiles& h : histograms) {
      out << "| " << h.name << " | " << h.count << " | "
          << format_double(h.p50) << " | " << format_double(h.p95) << " | "
          << format_double(h.p99) << " |\n";
    }
    out << "\n";
  }

  if (log_summary) {
    const LogSummary& s = *log_summary;
    out << "## Log summary\n\n";
    out << "- events: " << s.total << " (debug " << s.debug << ", info "
        << s.info << ", warn " << s.warn << ", error " << s.error << ")\n";
    out << "- error notifications: " << s.error_notifications << "\n";
    out << "- flight-recorder dumps: " << s.flight_dumps << "\n";
    if (s.malformed_lines > 0) {
      out << "- malformed lines skipped: " << s.malformed_lines << "\n";
    }
    if (!s.recent_warnings.empty()) {
      out << "- recent warnings:\n";
      for (const std::string& w : s.recent_warnings) {
        out << "  - " << w << "\n";
      }
    }
    out << "\n";
  }

  if (fusion) {
    const FusionSummary& f = *fusion;
    out << "## Multi-population fusion\n\n";
    out << "- populations: " << f.populations << " (" << f.observed_populations
        << " observed)\n";
    out << "- pooled signal variance tau^2: "
        << format_double(f.signal_variance) << "\n";
    out << "- correlation shrinkage lambda: " << format_double(f.shrinkage)
        << ", mean |rho|: " << format_double(f.mean_abs_correlation) << "\n";
    if (!f.population_samples.empty()) {
      out << "\n";
      append_markdown_table_header(out, {"population", "samples"});
      for (const auto& [index, samples] : f.population_samples) {
        out << "| " << index << " | " << format_double(samples) << " |\n";
      }
    }
    out << "\n";
  }

  if (!serve_gauges.empty()) {
    out << "## Serve plane\n\n";
    append_markdown_table_header(out, {"gauge", "value"});
    for (const CounterReading& g : serve_gauges) {
      out << "| " << g.name << " | " << format_double(g.value) << " |\n";
    }
    out << "\n";
  }

  if (!cv_surface.empty()) {
    out << "## CV score surface\n\n";
    if (cv_best) {
      out << "Best: score " << format_double(cv_best->score) << " at kappa0="
          << format_double(cv_best->kappa0)
          << ", nu0=" << format_double(cv_best->nu0) << "\n\n";
    }
    append_markdown_table_header(out, {"kappa0", "nu0", "score"});
    constexpr std::size_t kMaxRows = 10;
    const std::size_t rows = std::min(cv_surface.size(), kMaxRows);
    for (std::size_t i = 0; i < rows; ++i) {
      const CvSurfacePoint& p = cv_surface[i];
      out << "| " << format_double(p.kappa0) << " | " << format_double(p.nu0)
          << " | " << format_double(p.score) << " |\n";
    }
    if (cv_surface.size() > kMaxRows) {
      out << "\n(" << cv_surface.size() - kMaxRows
          << " lower-scoring points omitted)\n";
    }
    out << "\n";
  }

  if (!bench_deltas.empty()) {
    out << "## Bench deltas (newest: " << bench_label << ")\n\n";
    append_markdown_table_header(
        out, {"metric", "previous", "current", "delta", "status"});
    for (const BenchDelta& d : bench_deltas) {
      out << "| " << d.metric << " | " << format_double(d.previous) << " | "
          << format_double(d.current) << " | "
          << (d.delta_pct >= 0 ? "+" : "") << format_double(d.delta_pct)
          << "% | " << (d.regression ? "REGRESSION" : "ok") << " |\n";
    }
    out << "\n";
  }

  return out.str();
}

std::string RunReport::to_json() const {
  std::ostringstream out;
  out << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    out << (i ? ", " : "") << '"' << json_escape(findings[i]) << '"';
  }
  out << "],\n  \"health_counters\": {";
  for (std::size_t i = 0; i < health_counters.size(); ++i) {
    out << (i ? ", " : "") << '"' << json_escape(health_counters[i].name)
        << "\": " << json_number(health_counters[i].value);
  }
  out << "},\n  \"warm_start_hit_rate\": "
      << (warm_start_hit_rate ? json_number(*warm_start_hit_rate) : "null")
      << ",\n  \"cv_disqualified_ratio\": "
      << (cv_disqualified_ratio ? json_number(*cv_disqualified_ratio)
                                : "null")
      << ",\n  \"mc_parallel_efficiency\": "
      << (mc_parallel_efficiency ? json_number(*mc_parallel_efficiency)
                                 : "null");
  out << ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramQuantiles& h = histograms[i];
    out << (i ? ", " : "") << '"' << json_escape(h.name)
        << "\": {\"count\": " << h.count
        << ", \"p50\": " << json_number(h.p50)
        << ", \"p95\": " << json_number(h.p95)
        << ", \"p99\": " << json_number(h.p99) << '}';
  }
  out << "}";
  if (log_summary) {
    const LogSummary& s = *log_summary;
    out << ",\n  \"log\": {\"total\": " << s.total << ", \"debug\": "
        << s.debug << ", \"info\": " << s.info << ", \"warn\": " << s.warn
        << ", \"error\": " << s.error
        << ", \"error_notifications\": " << s.error_notifications
        << ", \"flight_dumps\": " << s.flight_dumps
        << ", \"malformed_lines\": " << s.malformed_lines << '}';
  }
  if (fusion) {
    const FusionSummary& f = *fusion;
    out << ",\n  \"fusion\": {\"populations\": " << f.populations
        << ", \"observed_populations\": " << f.observed_populations
        << ", \"signal_variance\": " << json_number(f.signal_variance)
        << ", \"shrinkage\": " << json_number(f.shrinkage)
        << ", \"mean_abs_correlation\": "
        << json_number(f.mean_abs_correlation)
        << ", \"population_samples\": {";
    for (std::size_t i = 0; i < f.population_samples.size(); ++i) {
      out << (i ? ", " : "") << '"' << f.population_samples[i].first
          << "\": " << json_number(f.population_samples[i].second);
    }
    out << "}}";
  }
  if (!serve_gauges.empty()) {
    out << ",\n  \"serve_gauges\": {";
    for (std::size_t i = 0; i < serve_gauges.size(); ++i) {
      out << (i ? ", " : "") << '"' << json_escape(serve_gauges[i].name)
          << "\": " << json_number(serve_gauges[i].value);
    }
    out << "}";
  }
  if (cv_best) {
    out << ",\n  \"cv_best\": {\"kappa0\": " << json_number(cv_best->kappa0)
        << ", \"nu0\": " << json_number(cv_best->nu0)
        << ", \"score\": " << json_number(cv_best->score)
        << ", \"grid_points\": " << cv_surface.size() << '}';
  }
  out << ",\n  \"bench_deltas\": [";
  for (std::size_t i = 0; i < bench_deltas.size(); ++i) {
    const BenchDelta& d = bench_deltas[i];
    out << (i ? ",\n    " : "\n    ") << "{\"metric\": \""
        << json_escape(d.metric) << "\", \"previous\": "
        << json_number(d.previous) << ", \"current\": "
        << json_number(d.current) << ", \"delta_pct\": "
        << json_number(d.delta_pct) << ", \"regression\": "
        << (d.regression ? "true" : "false") << '}';
  }
  out << (bench_deltas.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

RunReport diagnose_run(const DoctorInputs& inputs,
                       const DoctorThresholds& thresholds) {
  RunReport report;
  if (!inputs.snapshot_json.empty()) {
    ingest_snapshot_value(parse_json(inputs.snapshot_json), "(inline)",
                          report, thresholds);
  } else if (!inputs.snapshot_path.empty()) {
    ingest_snapshot(inputs.snapshot_path, report, thresholds);
  }
  if (!inputs.log_path.empty()) {
    ingest_log(inputs.log_path, report);
  }
  if (!inputs.cv_surface_path.empty()) {
    ingest_cv_surface(inputs.cv_surface_path, report);
  }
  if (!inputs.bench_path.empty()) {
    ingest_bench(inputs.bench_path, report, thresholds);
  }
  return report;
}

}  // namespace bmfusion::core
