#include "core/moments.hpp"

#include "common/contracts.hpp"
#include "stats/mvn.hpp"

namespace bmfusion::core {

void GaussianMoments::validate() const {
  BMFUSION_REQUIRE(mean.size() >= 1, "moments need dimension >= 1");
  BMFUSION_REQUIRE(covariance.rows() == mean.size() &&
                       covariance.cols() == mean.size(),
                   "covariance shape must match mean dimension");
  BMFUSION_REQUIRE(covariance.is_symmetric(1e-9),
                   "covariance must be symmetric");
  BMFUSION_REQUIRE(mean.is_finite() && covariance.is_finite(),
                   "moments must be finite");
  if (!linalg::Cholesky::is_positive_definite(covariance)) {
    throw NumericError("moments: covariance is not positive definite");
  }
}

double log_likelihood(const GaussianMoments& moments,
                      const linalg::Matrix& samples) {
  const stats::MultivariateNormal mvn(moments.mean, moments.covariance);
  return mvn.log_likelihood(samples);
}

double mean_error(const linalg::Vector& estimated,
                  const linalg::Vector& exact) {
  BMFUSION_REQUIRE(estimated.size() == exact.size(),
                   "mean error dimension mismatch");
  return (estimated - exact).norm2();
}

double covariance_error(const linalg::Matrix& estimated,
                        const linalg::Matrix& exact) {
  BMFUSION_REQUIRE(estimated.rows() == exact.rows() &&
                       estimated.cols() == exact.cols(),
                   "covariance error shape mismatch");
  return (estimated - exact).norm_frobenius();
}

}  // namespace bmfusion::core
