#include "core/moments.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/ldlt.hpp"
#include "stats/mvn.hpp"

namespace bmfusion::core {

void GaussianMoments::validate() const {
  BMFUSION_REQUIRE(mean.size() >= 1, "moments need dimension >= 1");
  BMFUSION_REQUIRE(covariance.rows() == mean.size() &&
                       covariance.cols() == mean.size(),
                   "covariance shape must match mean dimension");
  BMFUSION_REQUIRE(covariance.is_symmetric(1e-9),
                   "covariance must be symmetric");
  BMFUSION_REQUIRE(mean.is_finite() && covariance.is_finite(),
                   "moments must be finite");
  try {
    // Jittered probe: accept semi-definite-up-to-rounding covariances (the
    // scoring path degrades gracefully on them), reject indefinite ones.
    (void)linalg::Cholesky::factor_with_jitter(covariance);
  } catch (const NumericError& e) {
    throw NumericError("moments: covariance is not positive definite",
                       ErrorContext{}
                           .with_operation("moments-validate")
                           .with_dimension(dimension())
                           .with_detail(e.what()));
  }
}

SufficientStats::SufficientStats(std::size_t dimension)
    : sum_(dimension), sum_outer_(dimension, dimension) {
  BMFUSION_REQUIRE(dimension >= 1,
                   "sufficient stats need dimension >= 1");
}

SufficientStats SufficientStats::from_samples(const linalg::Matrix& samples) {
  BMFUSION_REQUIRE(samples.rows() >= 1 && samples.cols() >= 1,
                   "sufficient stats need a non-empty sample matrix");
  SufficientStats stats(samples.cols());
  const std::size_t d = samples.cols();
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    for (std::size_t r = 0; r < d; ++r) {
      const double xr = samples(i, r);
      stats.sum_[r] += xr;
      for (std::size_t c = r; c < d; ++c) {
        stats.sum_outer_(r, c) += xr * samples(i, c);
      }
    }
  }
  stats.count_ = samples.rows();
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < r; ++c) {
      stats.sum_outer_(r, c) = stats.sum_outer_(c, r);
    }
  }
  return stats;
}

void SufficientStats::add(const linalg::Vector& sample) {
  BMFUSION_REQUIRE(sample.size() == dimension(),
                   "sample dimension mismatch in sufficient stats");
  ++count_;
  for (std::size_t r = 0; r < dimension(); ++r) {
    sum_[r] += sample[r];
    for (std::size_t c = 0; c < dimension(); ++c) {
      sum_outer_(r, c) += sample[r] * sample[c];
    }
  }
}

SufficientStats& SufficientStats::operator+=(const SufficientStats& other) {
  BMFUSION_REQUIRE(other.dimension() == dimension(),
                   "sufficient stats dimension mismatch");
  count_ += other.count_;
  sum_ += other.sum_;
  sum_outer_ += other.sum_outer_;
  return *this;
}

SufficientStats& SufficientStats::operator-=(const SufficientStats& other) {
  BMFUSION_REQUIRE(other.dimension() == dimension(),
                   "sufficient stats dimension mismatch");
  BMFUSION_REQUIRE(count_ >= other.count_,
                   "sufficient stats subtraction needs a subset");
  count_ -= other.count_;
  sum_ -= other.sum_;
  sum_outer_ -= other.sum_outer_;
  return *this;
}

linalg::Vector SufficientStats::mean() const {
  BMFUSION_REQUIRE(count_ >= 1, "sufficient stats mean needs >= 1 sample");
  return sum_ / static_cast<double>(count_);
}

linalg::Matrix SufficientStats::scatter() const {
  BMFUSION_REQUIRE(count_ >= 1,
                   "sufficient stats scatter needs >= 1 sample");
  // S = sum x x^T - n xbar xbar^T.
  const linalg::Vector xbar = mean();
  linalg::Matrix s = sum_outer_;
  const double n = static_cast<double>(count_);
  for (std::size_t r = 0; r < dimension(); ++r) {
    for (std::size_t c = 0; c < dimension(); ++c) {
      s(r, c) -= n * xbar[r] * xbar[c];
    }
  }
  s.symmetrize();
  // A true scatter diagonal is non-negative; catastrophic cancellation on
  // the subtraction path (totals - fold with near-duplicate samples) can
  // leave entries like -1e-18 that spuriously fail SPD checks downstream.
  for (std::size_t r = 0; r < dimension(); ++r) {
    s(r, r) = std::max(s(r, r), 0.0);
  }
  return s;
}

double log_likelihood(const GaussianMoments& moments,
                      const linalg::Matrix& samples) {
  const stats::MultivariateNormal mvn(moments.mean, moments.covariance);
  return mvn.log_likelihood(samples);
}

namespace {

constexpr double kLog2Pi = 1.837877066409345483560659472811235279;

void require_stats_match(const GaussianMoments& moments,
                         const SufficientStats& stats) {
  BMFUSION_REQUIRE(stats.dimension() == moments.dimension(),
                   "sufficient stats dimension must match the moments");
  BMFUSION_REQUIRE(stats.count() >= 1,
                   "log likelihood needs >= 1 summarized sample");
}

/// Assembles the score from a factorization's logdet/trace/Mahalanobis.
template <typename Factorization>
double score_with(const Factorization& fac, double log_det,
                  const GaussianMoments& moments,
                  const SufficientStats& stats) {
  const double n = static_cast<double>(stats.count());
  const double d = static_cast<double>(moments.dimension());
  const double quad = fac.trace_of_solve(stats.scatter()) +
                      n * fac.mahalanobis_squared(stats.mean() -
                                                  moments.mean);
  return -0.5 * n * (d * kLog2Pi + log_det) - 0.5 * quad;
}

}  // namespace

double log_likelihood(const GaussianMoments& moments,
                      const SufficientStats& stats) {
  require_stats_match(moments, stats);
  const linalg::Cholesky chol(moments.covariance);  // throws when not SPD
  return score_with(chol, chol.log_determinant(), moments, stats);
}

double log_likelihood(const GaussianMoments& moments,
                      const SufficientStats& stats,
                      const LikelihoodFallback& fallback) {
  require_stats_match(moments, stats);
  try {
    const linalg::Cholesky chol =
        linalg::Cholesky::factor_with_jitter(moments.covariance,
                                             fallback.jitter);
    return score_with(chol, chol.log_determinant(), moments, stats);
  } catch (const NumericError& e) {
    if (!fallback.ldlt) {
      throw NumericError("log likelihood: covariance not factorizable",
                         ErrorContext{}
                             .with_operation("log-likelihood")
                             .with_dimension(moments.dimension())
                             .with_sample_count(stats.count())
                             .with_detail(e.what()));
    }
  }
  // Last resort: clamped-pivot LDLT handles covariances that are positive
  // semi-definite up to rounding; genuinely indefinite ones still throw.
  try {
    const linalg::Ldlt ldlt = linalg::Ldlt::semidefinite(moments.covariance);
    return score_with(ldlt, ldlt.log_abs_determinant(), moments, stats);
  } catch (const NumericError& e) {
    throw NumericError("log likelihood: covariance not factorizable",
                       ErrorContext{}
                           .with_operation("log-likelihood")
                           .with_dimension(moments.dimension())
                           .with_sample_count(stats.count())
                           .with_detail(e.what()));
  }
}

double mean_error(const linalg::Vector& estimated,
                  const linalg::Vector& exact) {
  BMFUSION_REQUIRE(estimated.size() == exact.size(),
                   "mean error dimension mismatch");
  return (estimated - exact).norm2();
}

double covariance_error(const linalg::Matrix& estimated,
                        const linalg::Matrix& exact) {
  BMFUSION_REQUIRE(estimated.rows() == exact.rows() &&
                       estimated.cols() == exact.cols(),
                   "covariance error shape mismatch");
  return (estimated - exact).norm_frobenius();
}

}  // namespace bmfusion::core
