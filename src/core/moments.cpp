#include "core/moments.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/ldlt.hpp"
#include "log/log.hpp"
#include "stats/mvn.hpp"
#include "telemetry/telemetry.hpp"

namespace bmfusion::core {

void GaussianMoments::validate() const {
  BMFUSION_REQUIRE(mean.size() >= 1, "moments need dimension >= 1");
  BMFUSION_REQUIRE(covariance.rows() == mean.size() &&
                       covariance.cols() == mean.size(),
                   "covariance shape must match mean dimension");
  BMFUSION_REQUIRE(covariance.is_symmetric(1e-9),
                   "covariance must be symmetric");
  BMFUSION_REQUIRE(mean.is_finite() && covariance.is_finite(),
                   "moments must be finite");
  try {
    // Jittered probe: accept semi-definite-up-to-rounding covariances (the
    // scoring path degrades gracefully on them), reject indefinite ones.
    (void)linalg::Cholesky::factor_with_jitter(covariance);
  } catch (const NumericError& e) {
    throw NumericError("moments: covariance is not positive definite",
                       ErrorContext{}
                           .with_operation("moments-validate")
                           .with_dimension(dimension())
                           .with_detail(e.what()));
  }
}

double log_likelihood(const GaussianMoments& moments,
                      const linalg::Matrix& samples) {
  const stats::MultivariateNormal mvn(moments.mean, moments.covariance);
  return mvn.log_likelihood(samples);
}

namespace {

constexpr double kLog2Pi = 1.837877066409345483560659472811235279;

void require_stats_match(const GaussianMoments& moments,
                         const SufficientStats& stats) {
  BMFUSION_REQUIRE(stats.dimension() == moments.dimension(),
                   "sufficient stats dimension must match the moments");
  BMFUSION_REQUIRE(stats.count() >= 1,
                   "log likelihood needs >= 1 summarized sample");
}

/// Assembles the score from a factorization's logdet/trace/Mahalanobis.
template <typename Factorization>
double score_with(const Factorization& fac, double log_det,
                  const GaussianMoments& moments,
                  const SufficientStats& stats) {
  const double n = static_cast<double>(stats.count());
  const double d = static_cast<double>(moments.dimension());
  const double quad = fac.trace_of_solve(stats.scatter()) +
                      n * fac.mahalanobis_squared(stats.mean() -
                                                  moments.mean);
  return -0.5 * n * (d * kLog2Pi + log_det) - 0.5 * quad;
}

}  // namespace

double log_likelihood(const GaussianMoments& moments,
                      const SufficientStats& stats) {
  require_stats_match(moments, stats);
  BMF_COUNTER_ADD("core.loglik.evals", 1);
  const linalg::Cholesky chol(moments.covariance);  // throws when not SPD
  return score_with(chol, chol.log_determinant(), moments, stats);
}

double log_likelihood(const GaussianMoments& moments,
                      const SufficientStats& stats,
                      const LikelihoodFallback& fallback) {
  require_stats_match(moments, stats);
  BMF_COUNTER_ADD("core.loglik.evals", 1);
  BMF_COUNTER_ADD("core.loglik.fallback_evals", 1);
  try {
    const linalg::Cholesky chol =
        linalg::Cholesky::factor_with_jitter(moments.covariance,
                                             fallback.jitter);
    if (chol.jitter_applied() > 0.0) {
      BMF_COUNTER_ADD("core.loglik.fallback_jitter", 1);
      BMF_LOG_DEBUG("loglik scored through jitter fallback",
                    log::f("ridge", chol.jitter_applied()),
                    log::f("dim", moments.dimension()),
                    log::f("n", stats.count()));
    }
    return score_with(chol, chol.log_determinant(), moments, stats);
  } catch (const NumericError& e) {
    if (!fallback.ldlt) {
      throw NumericError("log likelihood: covariance not factorizable",
                         ErrorContext{}
                             .with_operation("log-likelihood")
                             .with_dimension(moments.dimension())
                             .with_sample_count(stats.count())
                             .with_detail(e.what()));
    }
  }
  // Last resort: clamped-pivot LDLT handles covariances that are positive
  // semi-definite up to rounding; genuinely indefinite ones still throw.
  BMF_COUNTER_ADD("core.loglik.fallback_ldlt", 1);
  BMF_LOG_DEBUG("loglik escalating to clamped ldlt fallback",
                log::f("dim", moments.dimension()),
                log::f("n", stats.count()));
  try {
    const linalg::Ldlt ldlt = linalg::Ldlt::semidefinite(moments.covariance);
    return score_with(ldlt, ldlt.log_abs_determinant(), moments, stats);
  } catch (const NumericError& e) {
    throw NumericError("log likelihood: covariance not factorizable",
                       ErrorContext{}
                           .with_operation("log-likelihood")
                           .with_dimension(moments.dimension())
                           .with_sample_count(stats.count())
                           .with_detail(e.what()));
  }
}

double mean_error(const linalg::Vector& estimated,
                  const linalg::Vector& exact) {
  BMFUSION_REQUIRE(estimated.size() == exact.size(),
                   "mean error dimension mismatch");
  return (estimated - exact).norm2();
}

double covariance_error(const linalg::Matrix& estimated,
                        const linalg::Matrix& exact) {
  BMFUSION_REQUIRE(estimated.rows() == exact.rows() &&
                       estimated.cols() == exact.cols(),
                   "covariance error shape mismatch");
  return (estimated - exact).norm_frobenius();
}

}  // namespace bmfusion::core
