// Two-dimensional cross validation over (nu0, kappa0) — paper Section 4.2.
//
// For every grid point the BMF flow runs Q times (Q-fold split of the
// late-stage samples); each run scores the held-out fold with the Gaussian
// log-likelihood (eq. 9) under the MAP moments fitted on the training folds.
// The grid point with the best average held-out score wins.
//
// The engine works on sufficient statistics: each fold's (count, sum,
// scatter) triple is computed once, every leave-one-fold-out training set is
// formed by subtracting the fold from the totals, and the MAP fuse plus the
// held-out score are evaluated from the statistics in O(d^3) per
// (grid point, fold) — independent of the sample count. Grid points are
// evaluated in parallel on the persistent thread pool (common/parallel.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "core/moments.hpp"
#include "linalg/matrix.hpp"

namespace bmfusion::core {

/// Grid + fold configuration. The defaults mirror the paper: hyper-
/// parameters searched from 1 to 1000 (log-spaced) with four folds.
///
/// Fields may be assigned directly or chained fluently:
///   auto cfg = CrossValidationConfig{}.with_folds(5).with_grid(8, 8);
/// Validation is centralized in validate(), which every search entry point
/// calls before touching the grid.
struct CrossValidationConfig {
  std::size_t folds = 4;          ///< Q
  std::size_t kappa_points = 12;  ///< grid resolution in kappa0
  std::size_t nu_points = 12;     ///< grid resolution in nu0
  double kappa_min = 1.0;
  double kappa_max = 1000.0;
  /// nu0 is gridded as d + offset so every candidate satisfies nu0 > d.
  double nu_offset_min = 1.0;
  double nu_offset_max = 1000.0;
  /// Worker threads for the grid sweep; 0 means default_thread_count().
  std::size_t threads = 0;

  CrossValidationConfig& with_folds(std::size_t q) {
    folds = q;
    return *this;
  }
  CrossValidationConfig& with_grid(std::size_t kappa, std::size_t nu) {
    kappa_points = kappa;
    nu_points = nu;
    return *this;
  }
  CrossValidationConfig& with_kappa_range(double lo, double hi) {
    kappa_min = lo;
    kappa_max = hi;
    return *this;
  }
  CrossValidationConfig& with_nu_offset_range(double lo, double hi) {
    nu_offset_min = lo;
    nu_offset_max = hi;
    return *this;
  }
  CrossValidationConfig& with_threads(std::size_t count) {
    threads = count;
    return *this;
  }

  /// Throws ConfigError (a ContractError subtype) when the grid, ranges or
  /// fold count are malformed. Requires folds >= 2 so that a config which
  /// passes validate() never throws downstream in the fold-based search.
  void validate() const;
};

/// Which hyper-parameter selection strategy an estimator runs. Streaming
/// snapshots downgrade kCrossValidation to kEvidence automatically when the
/// accumulated statistics cannot sustain a fold split (fewer than two
/// non-empty folds, or a single pre-summarized batch).
enum class HyperSelection {
  kCrossValidation,  ///< paper Section 4.2 Q-fold CV (needs >= 2 usable folds)
  kEvidence,         ///< closed-form marginal likelihood (works from n = 1)
};

/// One evaluated grid point.
struct GridScore {
  double kappa0 = 0.0;
  double nu0 = 0.0;
  double score = 0.0;  ///< mean per-sample held-out log-likelihood
};

/// Outcome of the search: the winning hyper-parameters plus the full
/// evaluated grid (row-major, kappa outer) behind an accessor.
class CrossValidationResult {
 public:
  double kappa0 = 0.0;  ///< selected
  double nu0 = 0.0;     ///< selected
  double score = 0.0;   ///< held-out score of the selected point

  /// Builds a result from an evaluated grid by scanning for the best score
  /// (first strictly-greater entry wins, matching sequential evaluation
  /// order). Requires a non-empty grid. Throws NumericError("... all grid
  /// points degenerate ...") when every entry carries score == -infinity,
  /// so a fully disqualified search fails loudly at selection time instead
  /// of handing zero hyper-parameters to a later fuse step.
  [[nodiscard]] static CrossValidationResult from_grid(
      std::vector<GridScore> grid);

  /// Every evaluated grid point, row-major with kappa as the outer axis
  /// (index = kappa_index * nu_points + nu_index). Disqualified points
  /// carry score == -infinity.
  [[nodiscard]] const std::vector<GridScore>& grid() const { return grid_; }

 private:
  std::vector<GridScore> grid_;
};

/// Log-spaced grid helper (inclusive endpoints).
[[nodiscard]] std::vector<double> log_spaced(double lo, double hi,
                                             std::size_t points);

/// Runs the 2-D Q-fold search. `early_scaled` is the early-stage prior
/// knowledge and `late_scaled` the late-stage samples, both already in the
/// shifted/scaled space of Section 4.1. Requires at least 2 samples; the
/// fold count is reduced to the sample count when needed.
[[nodiscard]] CrossValidationResult select_hyperparameters(
    const GaussianMoments& early_scaled, const linalg::Matrix& late_scaled,
    const CrossValidationConfig& config = {});

/// Fold-statistics core of the search: one SufficientStats per held-out
/// fold, already in the scaled space. The matrix overload builds its folds
/// (round-robin over rows) and delegates here, so batch estimation and the
/// streaming snapshot path share one selection engine and one fallback
/// chain. Folds with zero samples are skipped during scoring; at least two
/// folds must be non-empty (a single usable fold disqualifies every grid
/// point, which surfaces as the NumericError from from_grid).
[[nodiscard]] CrossValidationResult select_hyperparameters(
    const GaussianMoments& early_scaled,
    const std::vector<SufficientStats>& fold_stats,
    const CrossValidationConfig& config = {});

/// Empirical-Bayes alternative to the paper's Q-fold cross validation:
/// scores every grid point with the *closed-form* marginal likelihood
/// (model evidence) of the normal-Wishart model and picks the maximum.
/// No folds are needed, so this works down to a single sample and costs
/// one posterior update per grid point instead of Q. The score field holds
/// the per-sample log evidence. (Library extension beyond the paper;
/// compared against CV in bench/ablation_evidence.)
[[nodiscard]] CrossValidationResult select_hyperparameters_evidence(
    const GaussianMoments& early_scaled, const linalg::Matrix& late_scaled,
    const CrossValidationConfig& config = {});

/// Evidence selection fed from precomputed sufficient statistics. The data
/// enters the marginal likelihood only through (n, sum, scatter), so this
/// overload is the one the streaming snapshot path calls; the matrix
/// overload summarizes its samples and delegates here.
[[nodiscard]] CrossValidationResult select_hyperparameters_evidence(
    const GaussianMoments& early_scaled, const SufficientStats& stats,
    const CrossValidationConfig& config = {});

}  // namespace bmfusion::core
