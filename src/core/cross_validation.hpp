// Two-dimensional cross validation over (nu0, kappa0) — paper Section 4.2.
//
// For every grid point the BMF flow runs Q times (Q-fold split of the
// late-stage samples); each run scores the held-out fold with the Gaussian
// log-likelihood (eq. 9) under the MAP moments fitted on the training folds.
// The grid point with the best average held-out score wins.
#pragma once

#include <vector>

#include "core/moments.hpp"
#include "linalg/matrix.hpp"

namespace bmfusion::core {

/// Grid + fold configuration. The defaults mirror the paper: hyper-
/// parameters searched from 1 to 1000 (log-spaced) with four folds.
struct CrossValidationConfig {
  std::size_t folds = 4;          ///< Q
  std::size_t kappa_points = 12;  ///< grid resolution in kappa0
  std::size_t nu_points = 12;     ///< grid resolution in nu0
  double kappa_min = 1.0;
  double kappa_max = 1000.0;
  /// nu0 is gridded as d + offset so every candidate satisfies nu0 > d.
  double nu_offset_min = 1.0;
  double nu_offset_max = 1000.0;
};

/// One evaluated grid point.
struct GridScore {
  double kappa0 = 0.0;
  double nu0 = 0.0;
  double score = 0.0;  ///< mean per-sample held-out log-likelihood
};

/// Outcome of the search.
struct CrossValidationResult {
  double kappa0 = 0.0;  ///< selected
  double nu0 = 0.0;     ///< selected
  double best_score = 0.0;
  std::vector<GridScore> table;  ///< full grid, row-major (kappa outer)
};

/// Log-spaced grid helper (inclusive endpoints).
[[nodiscard]] std::vector<double> log_spaced(double lo, double hi,
                                             std::size_t points);

/// Runs the 2-D Q-fold search. `early_scaled` is the early-stage prior
/// knowledge and `late_scaled` the late-stage samples, both already in the
/// shifted/scaled space of Section 4.1. Requires at least 2 samples; the
/// fold count is reduced to the sample count when needed.
[[nodiscard]] CrossValidationResult select_hyperparameters(
    const GaussianMoments& early_scaled, const linalg::Matrix& late_scaled,
    const CrossValidationConfig& config = {});

/// Empirical-Bayes alternative to the paper's Q-fold cross validation:
/// scores every grid point with the *closed-form* marginal likelihood
/// (model evidence) of the normal-Wishart model and picks the maximum.
/// No folds are needed, so this works down to a single sample and costs
/// one posterior update per grid point instead of Q. The score field holds
/// the per-sample log evidence. (Library extension beyond the paper;
/// compared against CV in bench/ablation_evidence.)
[[nodiscard]] CrossValidationResult select_hyperparameters_evidence(
    const GaussianMoments& early_scaled, const linalg::Matrix& late_scaled,
    const CrossValidationConfig& config = {});

}  // namespace bmfusion::core
