#include "core/normal_wishart.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "linalg/cholesky.hpp"
#include "stats/moments.hpp"
#include "stats/mvn.hpp"
#include "log/log.hpp"
#include "stats/special.hpp"
#include "stats/wishart.hpp"
#include "telemetry/telemetry.hpp"

namespace bmfusion::core {

using linalg::Cholesky;
using linalg::Matrix;
using linalg::Vector;

namespace {
constexpr double kLog2Pi = 1.837877066409345483560659472811235279;
constexpr double kLog2 = 0.693147180559945309417232121458176568;
}  // namespace

NormalWishart::NormalWishart(Vector mu0, double kappa0, double nu0,
                             Matrix t0)
    : mu0_(std::move(mu0)), kappa0_(kappa0), nu0_(nu0), t0_(std::move(t0)) {
  const auto d = static_cast<double>(mu0_.size());
  BMFUSION_REQUIRE(mu0_.size() >= 1, "normal-wishart needs dimension >= 1");
  BMFUSION_REQUIRE(kappa0_ > 0.0, "kappa0 must be positive");
  BMFUSION_REQUIRE(nu0_ > d - 1.0, "nu0 must exceed d - 1");
  BMFUSION_REQUIRE(t0_.rows() == mu0_.size() && t0_.is_square(),
                   "scale matrix shape must match mu0");
  if (!Cholesky::is_positive_definite(t0_)) {
    throw NumericError("normal-wishart: scale matrix is not SPD");
  }
}

NormalWishart NormalWishart::from_early_stage(const GaussianMoments& early,
                                              double kappa0, double nu0) {
  early.validate();
  const auto d = static_cast<double>(early.dimension());
  BMFUSION_REQUIRE(nu0 > d,
                   "early-stage anchoring needs nu0 > d (paper eq. 20)");
  // T0 = Lambda_E / (nu0 - d) with Lambda_E = Sigma_E^-1.
  const Matrix lambda_e = Cholesky(early.covariance).inverse();
  return NormalWishart(early.mean, kappa0, nu0, lambda_e / (nu0 - d));
}

std::pair<Vector, Matrix> NormalWishart::mode() const {
  const auto d = static_cast<double>(dimension());
  BMFUSION_REQUIRE(nu0_ > d, "mode needs nu0 > d (paper eq. 16)");
  return {mu0_, t0_ * (nu0_ - d)};
}

GaussianMoments NormalWishart::mode_moments() const {
  const auto [mu, lambda] = mode();
  GaussianMoments moments;
  moments.mean = mu;
  moments.covariance = Cholesky(lambda).inverse();
  return moments;
}

NormalWishart NormalWishart::posterior(const Matrix& samples) const {
  BMFUSION_REQUIRE(samples.cols() == dimension(),
                   "sample dimension must match the prior");
  BMFUSION_REQUIRE(samples.rows() >= 1, "posterior needs >= 1 sample");
  const auto n = static_cast<double>(samples.rows());
  const Vector xbar = stats::sample_mean(samples);        // eq. (24) input
  const Matrix s = stats::scatter_matrix(samples);        // eq. (26)
  return posterior_from(n, xbar, s);
}

NormalWishart NormalWishart::posterior(const SufficientStats& stats) const {
  BMFUSION_REQUIRE(stats.dimension() == dimension(),
                   "sufficient stats dimension must match the prior");
  BMFUSION_REQUIRE(stats.count() >= 1, "posterior needs >= 1 sample");
  return posterior_from(static_cast<double>(stats.count()), stats.mean(),
                        stats.scatter());
}

NormalWishart NormalWishart::posterior_from(double n, const Vector& xbar,
                                            const Matrix& s) const {
  BMF_COUNTER_ADD("core.nw.posterior_updates", 1);
  BMF_LOG_DEBUG("normal-wishart posterior update", log::f("n", n),
                log::f("kappa0", kappa0_), log::f("nu0", nu0_),
                log::f("dim", dimension()));
  // eq. (24): mu_n = (kappa0 mu0 + n xbar) / (kappa0 + n)
  const Vector mu_n = (mu0_ * kappa0_ + xbar * n) / (kappa0_ + n);

  // eq. (25): T_n^-1 = T_0^-1 + S + kappa0 n/(kappa0+n) (mu0-xbar)(mu0-xbar)^T
  const Vector delta = mu0_ - xbar;
  const Matrix t0_inv = Cholesky(t0_).inverse();
  Matrix tn_inv =
      t0_inv + s + outer(delta, delta) * (kappa0_ * n / (kappa0_ + n));
  tn_inv.symmetrize();
  Matrix tn = Cholesky(tn_inv).inverse();

  // eqs. (27)-(28).
  return NormalWishart(mu_n, kappa0_ + n, nu0_ + n, std::move(tn));
}

double NormalWishart::log_pdf(const Vector& mu, const Matrix& lambda) const {
  BMFUSION_REQUIRE(mu.size() == dimension(), "mu dimension mismatch");
  BMFUSION_REQUIRE(lambda.rows() == dimension() && lambda.is_square(),
                   "lambda dimension mismatch");
  const auto d = static_cast<double>(dimension());
  const Cholesky lam_chol(lambda);  // throws when lambda is not SPD
  const Cholesky t0_chol(t0_);
  const double log_det_lambda = lam_chol.log_determinant();

  // Gaussian part: N(mu | mu0, (kappa0 Lambda)^-1).
  const Vector diff = mu - mu0_;
  const double quad = kappa0_ * quadratic_form(diff, lambda, diff);
  const double log_gauss = 0.5 * (d * std::log(kappa0_) + log_det_lambda -
                                  d * kLog2Pi) -
                           0.5 * quad;

  // Wishart part: Wi_{nu0}(Lambda | T0).
  const Matrix t0_inv = t0_chol.inverse();
  double trace_term = 0.0;
  for (std::size_t r = 0; r < dimension(); ++r) {
    for (std::size_t c = 0; c < dimension(); ++c) {
      trace_term += t0_inv(r, c) * lambda(c, r);
    }
  }
  const double log_wishart =
      0.5 * (nu0_ - d - 1.0) * log_det_lambda - 0.5 * trace_term -
      0.5 * nu0_ * d * kLog2 - 0.5 * nu0_ * t0_chol.log_determinant() -
      stats::log_multivariate_gamma(0.5 * nu0_, dimension());
  return log_gauss + log_wishart;
}

double NormalWishart::log_normalizer() const {
  const auto d = static_cast<double>(dimension());
  const Cholesky t0_chol(t0_);
  return 0.5 * d * (kLog2Pi - std::log(kappa0_)) +
         0.5 * nu0_ * t0_chol.log_determinant() + 0.5 * nu0_ * d * kLog2 +
         stats::log_multivariate_gamma(0.5 * nu0_, dimension());
}

double NormalWishart::log_marginal_likelihood(const Matrix& samples) const {
  BMFUSION_REQUIRE(samples.rows() >= 1 && samples.cols() == dimension(),
                   "marginal likelihood needs matching non-empty samples");
  const auto n = static_cast<double>(samples.rows());
  const auto d = static_cast<double>(dimension());
  const NormalWishart post = posterior(samples);
  return post.log_normalizer() - log_normalizer() -
         0.5 * n * d * kLog2Pi;
}

double NormalWishart::log_marginal_likelihood(
    const SufficientStats& stats) const {
  BMFUSION_REQUIRE(stats.count() >= 1 && stats.dimension() == dimension(),
                   "marginal likelihood needs matching non-empty stats");
  const auto n = static_cast<double>(stats.count());
  const auto d = static_cast<double>(dimension());
  const NormalWishart post = posterior(stats);
  return post.log_normalizer() - log_normalizer() -
         0.5 * n * d * kLog2Pi;
}

std::pair<Vector, Matrix> NormalWishart::sample(
    stats::Xoshiro256pp& rng) const {
  const stats::Wishart wishart(nu0_, t0_);
  Matrix lambda = wishart.sample(rng);
  const Matrix cov_mu = Cholesky(lambda * kappa0_).inverse();
  const stats::MultivariateNormal mvn(mu0_, cov_mu);
  Vector mu = mvn.sample(rng);
  return {std::move(mu), std::move(lambda)};
}

NormalWishart::StudentT NormalWishart::posterior_predictive() const {
  const auto d = static_cast<double>(dimension());
  BMFUSION_REQUIRE(nu0_ > d - 1.0 + 1e-12,
                   "predictive needs nu0 > d - 1");
  StudentT t;
  t.dof = nu0_ - d + 1.0;
  t.location = mu0_;
  const Matrix t0_inv = Cholesky(t0_).inverse();
  t.scale = t0_inv * ((kappa0_ + 1.0) / (kappa0_ * t.dof));
  t.scale.symmetrize();
  return t;
}

NormalWishart::StudentT NormalWishart::marginal_mean() const {
  const auto d = static_cast<double>(dimension());
  BMFUSION_REQUIRE(nu0_ > d - 1.0 + 1e-12, "marginal needs nu0 > d - 1");
  StudentT t;
  t.dof = nu0_ - d + 1.0;
  t.location = mu0_;
  const Matrix t0_inv = Cholesky(t0_).inverse();
  t.scale = t0_inv * (1.0 / (kappa0_ * t.dof));
  t.scale.symmetrize();
  return t;
}

GaussianMoments map_fuse(const GaussianMoments& early,
                         const SufficientStats& stats, double kappa0,
                         double nu0) {
  const auto d = static_cast<double>(early.dimension());
  BMFUSION_REQUIRE(stats.dimension() == early.dimension(),
                   "sufficient stats dimension must match the early moments");
  BMFUSION_REQUIRE(stats.count() >= 1, "map_fuse needs >= 1 sample");
  BMFUSION_REQUIRE(kappa0 > 0.0, "kappa0 must be positive");
  BMFUSION_REQUIRE(nu0 > d, "map_fuse needs nu0 > d (paper eq. 20)");
  const auto n = static_cast<double>(stats.count());
  const Vector xbar = stats.mean();

  // eqs. (24), (29): mu_MAP = mu_n = (kappa0 mu_E + n xbar) / (kappa0 + n).
  GaussianMoments fused;
  fused.mean = (early.mean * kappa0 + xbar * n) / (kappa0 + n);

  // eq. (25) with the eq. (20) anchoring substituted: the prior scale obeys
  // T0^-1 = (nu0 - d) Sigma_E, so no matrix inversion is needed to form it.
  const Vector delta = early.mean - xbar;
  Matrix tn_inv = early.covariance * (nu0 - d) + stats.scatter() +
                  outer(delta, delta) * (kappa0 * n / (kappa0 + n));

  // eqs. (28), (32): Lambda_MAP = (nu_n - d) T_n with nu_n = nu0 + n, hence
  // Sigma_MAP = T_n^-1 / (nu0 + n - d) — again inversion-free.
  fused.covariance = tn_inv / (nu0 + n - d);
  fused.covariance.symmetrize();
  return fused;
}

double NormalWishart::student_t_log_pdf(const StudentT& t, const Vector& x) {
  BMFUSION_REQUIRE(x.size() == t.location.size(),
                   "student-t dimension mismatch");
  BMFUSION_REQUIRE(t.dof > 0.0, "student-t needs positive dof");
  const auto d = static_cast<double>(t.location.size());
  const Cholesky chol(t.scale);
  const double maha = chol.mahalanobis_squared(x - t.location);
  return std::lgamma(0.5 * (t.dof + d)) - std::lgamma(0.5 * t.dof) -
         0.5 * d * std::log(t.dof) - 0.5 * d * std::log(3.141592653589793) -
         0.5 * chol.log_determinant() -
         0.5 * (t.dof + d) * std::log1p(maha / t.dof);
}

}  // namespace bmfusion::core
