#include "core/cross_validation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "core/normal_wishart.hpp"
#include "stats/mvn.hpp"

namespace bmfusion::core {

using linalg::Matrix;
using linalg::Vector;

std::vector<double> log_spaced(double lo, double hi, std::size_t points) {
  BMFUSION_REQUIRE(lo > 0.0 && hi > lo, "log grid needs 0 < lo < hi");
  BMFUSION_REQUIRE(points >= 2, "log grid needs >= 2 points");
  std::vector<double> grid(points);
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    grid[i] = std::exp(log_lo + t * (log_hi - log_lo));
  }
  return grid;
}

namespace {

/// Extracts the rows of `samples` whose fold id (round-robin) matches /
/// differs from `fold`.
Matrix fold_rows(const Matrix& samples, std::size_t folds, std::size_t fold,
                 bool training) {
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    const bool in_test = (i % folds) == fold;
    if (in_test != training) keep.push_back(i);
  }
  Matrix out(keep.size(), samples.cols());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    out.set_row(i, samples.row(keep[i]));
  }
  return out;
}

}  // namespace

CrossValidationResult select_hyperparameters(
    const GaussianMoments& early_scaled, const Matrix& late_scaled,
    const CrossValidationConfig& config) {
  early_scaled.validate();
  BMFUSION_REQUIRE(late_scaled.cols() == early_scaled.dimension(),
                   "late samples must match the early-stage dimension");
  BMFUSION_REQUIRE(late_scaled.rows() >= 2,
                   "cross validation needs >= 2 late-stage samples");
  BMFUSION_REQUIRE(config.folds >= 2, "cross validation needs >= 2 folds");

  const std::size_t folds = std::min(config.folds, late_scaled.rows());
  const double d = static_cast<double>(early_scaled.dimension());
  const std::vector<double> kappas =
      log_spaced(config.kappa_min, config.kappa_max, config.kappa_points);
  const std::vector<double> nu_offsets = log_spaced(
      config.nu_offset_min, config.nu_offset_max, config.nu_points);

  CrossValidationResult result;
  result.best_score = -std::numeric_limits<double>::infinity();
  result.table.reserve(kappas.size() * nu_offsets.size());

  // Pre-split folds once; identical for every grid point, as in Fig. 2(b).
  std::vector<Matrix> train_sets;
  std::vector<Matrix> test_sets;
  train_sets.reserve(folds);
  test_sets.reserve(folds);
  for (std::size_t q = 0; q < folds; ++q) {
    train_sets.push_back(fold_rows(late_scaled, folds, q, /*training=*/true));
    test_sets.push_back(fold_rows(late_scaled, folds, q, /*training=*/false));
  }

  for (const double kappa0 : kappas) {
    for (const double nu_offset : nu_offsets) {
      const double nu0 = d + nu_offset;
      const NormalWishart prior =
          NormalWishart::from_early_stage(early_scaled, kappa0, nu0);
      double total_loglik = 0.0;
      std::size_t total_count = 0;
      bool valid = true;
      for (std::size_t q = 0; q < folds && valid; ++q) {
        if (train_sets[q].rows() == 0 || test_sets[q].rows() == 0) continue;
        try {
          const GaussianMoments map =
              prior.posterior(train_sets[q]).map_estimate();
          const stats::MultivariateNormal mvn(map.mean, map.covariance);
          total_loglik += mvn.log_likelihood(test_sets[q]);
          total_count += test_sets[q].rows();
        } catch (const NumericError&) {
          valid = false;  // degenerate fit: disqualify this grid point
        }
      }
      GridScore gs;
      gs.kappa0 = kappa0;
      gs.nu0 = nu0;
      gs.score = (valid && total_count > 0)
                     ? total_loglik / static_cast<double>(total_count)
                     : -std::numeric_limits<double>::infinity();
      if (gs.score > result.best_score) {
        result.best_score = gs.score;
        result.kappa0 = kappa0;
        result.nu0 = nu0;
      }
      result.table.push_back(gs);
    }
  }
  BMFUSION_REQUIRE(std::isfinite(result.best_score),
                   "cross validation found no valid hyper-parameters");
  return result;
}

CrossValidationResult select_hyperparameters_evidence(
    const GaussianMoments& early_scaled, const Matrix& late_scaled,
    const CrossValidationConfig& config) {
  early_scaled.validate();
  BMFUSION_REQUIRE(late_scaled.cols() == early_scaled.dimension(),
                   "late samples must match the early-stage dimension");
  BMFUSION_REQUIRE(late_scaled.rows() >= 1,
                   "evidence selection needs >= 1 late-stage sample");

  const double d = static_cast<double>(early_scaled.dimension());
  const double n = static_cast<double>(late_scaled.rows());
  const std::vector<double> kappas =
      log_spaced(config.kappa_min, config.kappa_max, config.kappa_points);
  const std::vector<double> nu_offsets = log_spaced(
      config.nu_offset_min, config.nu_offset_max, config.nu_points);

  CrossValidationResult result;
  result.best_score = -std::numeric_limits<double>::infinity();
  result.table.reserve(kappas.size() * nu_offsets.size());
  for (const double kappa0 : kappas) {
    for (const double nu_offset : nu_offsets) {
      const double nu0 = d + nu_offset;
      GridScore gs;
      gs.kappa0 = kappa0;
      gs.nu0 = nu0;
      try {
        const NormalWishart prior =
            NormalWishart::from_early_stage(early_scaled, kappa0, nu0);
        gs.score = prior.log_marginal_likelihood(late_scaled) / n;
      } catch (const NumericError&) {
        gs.score = -std::numeric_limits<double>::infinity();
      }
      if (gs.score > result.best_score) {
        result.best_score = gs.score;
        result.kappa0 = kappa0;
        result.nu0 = nu0;
      }
      result.table.push_back(gs);
    }
  }
  BMFUSION_REQUIRE(std::isfinite(result.best_score),
                   "evidence selection found no valid hyper-parameters");
  return result;
}

}  // namespace bmfusion::core
