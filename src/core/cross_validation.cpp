#include "core/cross_validation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "core/normal_wishart.hpp"
#include "linalg/cholesky.hpp"
#include "log/log.hpp"
#include "telemetry/telemetry.hpp"

namespace bmfusion::core {

using linalg::Matrix;
using linalg::Vector;

void CrossValidationConfig::validate() const {
  // folds >= 2 is what every fold-based consumer ultimately needs; checking
  // it here keeps the invariant that a config which passes validate() never
  // throws downstream. (The evidence selector ignores folds entirely.)
  BMFUSION_CONFIG_REQUIRE(folds >= 2,
                          "cross validation config needs folds >= 2");
  BMFUSION_CONFIG_REQUIRE(kappa_points >= 2 && nu_points >= 2,
                          "hyper-parameter grid needs >= 2 points per axis");
  BMFUSION_CONFIG_REQUIRE(kappa_min > 0.0 && kappa_max > kappa_min,
                          "kappa range needs 0 < min < max");
  BMFUSION_CONFIG_REQUIRE(nu_offset_min > 0.0 && nu_offset_max > nu_offset_min,
                          "nu offset range needs 0 < min < max");
}

std::vector<double> log_spaced(double lo, double hi, std::size_t points) {
  BMFUSION_REQUIRE(lo > 0.0 && hi > lo, "log grid needs 0 < lo < hi");
  BMFUSION_REQUIRE(points >= 2, "log grid needs >= 2 points");
  std::vector<double> grid(points);
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    grid[i] = std::exp(log_lo + t * (log_hi - log_lo));
  }
  return grid;
}

CrossValidationResult CrossValidationResult::from_grid(
    std::vector<GridScore> grid) {
  BMFUSION_REQUIRE(!grid.empty(), "cross validation result needs a grid");
  CrossValidationResult result;
  result.score = -std::numeric_limits<double>::infinity();
  for (const GridScore& gs : grid) {
    if (gs.score > result.score) {
      result.score = gs.score;
      result.kappa0 = gs.kappa0;
      result.nu0 = gs.nu0;
    }
  }
  if (!std::isfinite(result.score)) {
    // Every candidate was disqualified. Failing here, at selection time,
    // beats handing zero-valued hyper-parameters to a later fuse_at call.
    throw NumericError(
        "cross validation: all grid points degenerate (every candidate was "
        "disqualified during scoring)",
        ErrorContext{}
            .with_operation("cv-select")
            .with_detail("grid_points=" + std::to_string(grid.size())));
  }
  result.grid_ = std::move(grid);
  BMF_LOG_INFO("cv selected hyper-parameters", log::f("kappa0", result.kappa0),
               log::f("nu0", result.nu0), log::f("score", result.score),
               log::f("grid_points", result.grid_.size()));
  return result;
}

CrossValidationResult select_hyperparameters(
    const GaussianMoments& early_scaled, const Matrix& late_scaled,
    const CrossValidationConfig& config) {
  early_scaled.validate();
  config.validate();
  BMFUSION_REQUIRE(late_scaled.cols() == early_scaled.dimension(),
                   "late samples must match the early-stage dimension");
  BMFUSION_REQUIRE(late_scaled.rows() >= 2,
                   "cross validation needs >= 2 late-stage samples");

  // Summarize every fold once (round-robin split, identical for every grid
  // point as in Fig. 2(b)); the fold-statistics core below never touches
  // the raw samples again. The streaming snapshot path enters the same core
  // with fold statistics accumulated one sample at a time.
  const std::size_t folds = std::min(config.folds, late_scaled.rows());
  std::vector<SufficientStats> test_stats(
      folds, SufficientStats(early_scaled.dimension()));
  for (std::size_t i = 0; i < late_scaled.rows(); ++i) {
    test_stats[i % folds].add(late_scaled.row(i));
  }
  return select_hyperparameters(early_scaled, test_stats, config);
}

CrossValidationResult select_hyperparameters(
    const GaussianMoments& early_scaled,
    const std::vector<SufficientStats>& fold_stats,
    const CrossValidationConfig& config) {
  early_scaled.validate();
  config.validate();
  BMFUSION_REQUIRE(!fold_stats.empty(),
                   "cross validation needs >= 1 fold statistic");
  std::size_t total_samples = 0;
  for (const SufficientStats& fold : fold_stats) {
    if (fold.count() == 0) continue;
    BMFUSION_REQUIRE(fold.dimension() == early_scaled.dimension(),
                     "fold statistics must match the early-stage dimension");
    total_samples += fold.count();
  }
  BMFUSION_REQUIRE(total_samples >= 2,
                   "cross validation needs >= 2 late-stage samples");

  const std::size_t folds = fold_stats.size();
  const std::vector<SufficientStats>& test_stats = fold_stats;
  const double d = static_cast<double>(early_scaled.dimension());
  const std::vector<double> kappas =
      log_spaced(config.kappa_min, config.kappa_max, config.kappa_points);
  const std::vector<double> nu_offsets = log_spaced(
      config.nu_offset_min, config.nu_offset_max, config.nu_points);

  // Each leave-one-fold-out training set is the totals minus the held-out
  // fold — O(folds) stats arithmetic, however many samples they summarize.
  SufficientStats totals(early_scaled.dimension());
  for (const SufficientStats& fold : test_stats) {
    if (fold.count() > 0) totals += fold;
  }
  std::vector<SufficientStats> train_stats;
  train_stats.reserve(folds);
  for (const SufficientStats& fold : test_stats) {
    // An empty fold (possible only on the streaming path) is skipped during
    // scoring, so its training set is never fused; keep the totals as a
    // dimension-matched placeholder.
    train_stats.push_back(fold.count() > 0 ? totals - fold : totals);
  }

  // Sweep the grid in parallel; index = kappa_index * nu_points + nu_index
  // keeps the table row-major with kappa outer, matching sequential order.
  // Scoring opts into the documented fallback chain (ridge-jitter retries,
  // then clamped LDLT) so a near-singular fold downgrades gracefully instead
  // of silently disqualifying the grid point; only genuinely indefinite fits
  // still disqualify.
  const LikelihoodFallback score_fallback{};
  std::vector<GridScore> grid(kappas.size() * nu_offsets.size());
  BMF_SPAN("cv_select");
  BMF_COUNTER_ADD("core.cv.selections", 1);
  BMF_COUNTER_ADD("core.cv.grid_points", grid.size());
  parallel_for(
      grid.size(),
      [&](std::size_t index) {
        BMF_SCOPED_TIMER_US("core.cv.grid_point_us");
        const double kappa0 = kappas[index / nu_offsets.size()];
        const double nu0 = d + nu_offsets[index % nu_offsets.size()];
        double total_loglik = 0.0;
        std::size_t total_count = 0;
        bool valid = true;
        for (std::size_t q = 0; q < folds && valid; ++q) {
          if (train_stats[q].count() == 0 || test_stats[q].count() == 0) {
            continue;
          }
          try {
            const GaussianMoments map =
                map_fuse(early_scaled, train_stats[q], kappa0, nu0);
            total_loglik += log_likelihood(map, test_stats[q],
                                           score_fallback);
            total_count += test_stats[q].count();
          } catch (const NumericError&) {
            valid = false;  // degenerate fit: disqualify this grid point
            BMF_LOG_DEBUG("cv fold disqualified grid point",
                          log::f("kappa0", kappa0), log::f("nu0", nu0),
                          log::f("fold", q), log::f("folds", folds));
          }
        }
        if (!valid) BMF_COUNTER_ADD("core.cv.disqualified_points", 1);
        GridScore& gs = grid[index];
        gs.kappa0 = kappa0;
        gs.nu0 = nu0;
        gs.score = (valid && total_count > 0)
                       ? total_loglik / static_cast<double>(total_count)
                       : -std::numeric_limits<double>::infinity();
      },
      config.threads);

  // from_grid throws a typed NumericError when every point was disqualified.
  return CrossValidationResult::from_grid(std::move(grid));
}

CrossValidationResult select_hyperparameters_evidence(
    const GaussianMoments& early_scaled, const Matrix& late_scaled,
    const CrossValidationConfig& config) {
  BMFUSION_REQUIRE(late_scaled.rows() >= 1,
                   "evidence selection needs >= 1 late-stage sample");
  // The marginal likelihood touches the data only through its sufficient
  // statistics; summarize once and delegate to the stats core shared with
  // the streaming snapshot path.
  return select_hyperparameters_evidence(
      early_scaled, SufficientStats::from_samples(late_scaled), config);
}

CrossValidationResult select_hyperparameters_evidence(
    const GaussianMoments& early_scaled, const SufficientStats& stats,
    const CrossValidationConfig& config) {
  early_scaled.validate();
  config.validate();
  BMFUSION_REQUIRE(stats.dimension() == early_scaled.dimension(),
                   "late statistics must match the early-stage dimension");
  BMFUSION_REQUIRE(stats.count() >= 1,
                   "evidence selection needs >= 1 late-stage sample");

  const double d = static_cast<double>(early_scaled.dimension());
  const double n = static_cast<double>(stats.count());
  const std::vector<double> kappas =
      log_spaced(config.kappa_min, config.kappa_max, config.kappa_points);
  const std::vector<double> nu_offsets = log_spaced(
      config.nu_offset_min, config.nu_offset_max, config.nu_points);

  // Shared across the whole grid: the prior scale enters only through
  // Lambda_E.
  const Matrix lambda_e =
      linalg::Cholesky(early_scaled.covariance).inverse();

  std::vector<GridScore> grid(kappas.size() * nu_offsets.size());
  BMF_SPAN("cv_select_evidence");
  BMF_COUNTER_ADD("core.cv.selections", 1);
  BMF_COUNTER_ADD("core.cv.grid_points", grid.size());
  parallel_for(
      grid.size(),
      [&](std::size_t index) {
        BMF_SCOPED_TIMER_US("core.cv.grid_point_us");
        BMF_COUNTER_ADD("core.cv.evidence_evals", 1);
        const double kappa0 = kappas[index / nu_offsets.size()];
        const double nu0 = d + nu_offsets[index % nu_offsets.size()];
        GridScore& gs = grid[index];
        gs.kappa0 = kappa0;
        gs.nu0 = nu0;
        try {
          // Equivalent to NormalWishart::from_early_stage (eq. 20) with the
          // early-stage inversion hoisted out of the grid sweep.
          const NormalWishart prior(early_scaled.mean, kappa0, nu0,
                                    lambda_e / (nu0 - d));
          gs.score = prior.log_marginal_likelihood(stats) / n;
        } catch (const NumericError&) {
          gs.score = -std::numeric_limits<double>::infinity();
          BMF_LOG_DEBUG("cv evidence disqualified grid point",
                        log::f("kappa0", kappa0), log::f("nu0", nu0));
        }
      },
      config.threads);

  // from_grid throws a typed NumericError when every point was disqualified.
  return CrossValidationResult::from_grid(std::move(grid));
}

}  // namespace bmfusion::core
