// DEPRECATED streaming (sample-at-a-time) Bayesian model fusion.
//
// SequentialFusion predates the MomentEstimator streaming surface and is
// now a thin compatibility shim over it. Its two observe() overloads map
// directly onto MomentEstimator::observe(Vector)/observe(Matrix); its
// current_estimate() is snapshot() at fixed hyper-parameters. Migrate:
//
//   * live monitoring of an estimator: BmfEstimator/MleEstimator
//     set_nominal + observe + snapshot (core/estimator.hpp);
//   * raw conjugate-posterior tracking at fixed hyper-parameters (what this
//     class actually does): keep a NormalWishart and fold batches in with
//     posterior(SufficientStats) — one O(d^3) update per batch.
//
// The shim survives one deprecation cycle for out-of-tree callers; every
// in-repo caller has been migrated.
#pragma once

#include "core/moments.hpp"
#include "core/normal_wishart.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace bmfusion::core {

/// Accumulates late-stage samples into a normal-Wishart posterior.
/// \deprecated Use the MomentEstimator streaming surface (observe/snapshot)
/// or NormalWishart::posterior(SufficientStats) directly.
class [[deprecated(
    "use the MomentEstimator streaming surface (observe/merge/snapshot) or "
    "NormalWishart::posterior(SufficientStats)")]] SequentialFusion {
 public:
  /// Starts from a (typically early-stage-anchored) prior.
  explicit SequentialFusion(NormalWishart prior);

  /// Folds in one sample (dimension must match).
  void observe(const linalg::Vector& sample);

  /// Folds in a batch of samples (rows).
  void observe(const linalg::Matrix& samples);

  /// Number of samples observed so far.
  [[nodiscard]] std::size_t observed_count() const { return count_; }

  /// The current posterior distribution.
  [[nodiscard]] const NormalWishart& posterior() const { return state_; }

  /// Current MAP moment estimate (paper eqs. 29-32 applied to the running
  /// posterior). Valid from zero observations (then: the prior mode).
  [[nodiscard]] GaussianMoments current_estimate() const;

  /// Predictive log-density of a would-be next sample under the current
  /// posterior (multivariate Student-t). Useful as an online outlier score
  /// for incoming measurements.
  [[nodiscard]] double predictive_log_pdf(const linalg::Vector& x) const;

 private:
  NormalWishart state_;
  std::size_t count_ = 0;
};

}  // namespace bmfusion::core
