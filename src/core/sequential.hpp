// Streaming (sample-at-a-time) Bayesian model fusion.
//
// Conjugacy makes the posterior after each new late-stage sample another
// normal-Wishart, so validation can be monitored live: after every silicon
// measurement the current MAP moments (and the predictive density) are
// available in O(d^3). A practical extension beyond the paper's batch
// formulation — useful when each measurement takes hours and one wants to
// stop as soon as the estimate stabilizes.
#pragma once

#include "core/moments.hpp"
#include "core/normal_wishart.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace bmfusion::core {

/// Accumulates late-stage samples into a normal-Wishart posterior.
class SequentialFusion {
 public:
  /// Starts from a (typically early-stage-anchored) prior.
  explicit SequentialFusion(NormalWishart prior);

  /// Folds in one sample (dimension must match).
  void observe(const linalg::Vector& sample);

  /// Folds in a batch of samples (rows).
  void observe(const linalg::Matrix& samples);

  /// Number of samples observed so far.
  [[nodiscard]] std::size_t observed_count() const { return count_; }

  /// The current posterior distribution.
  [[nodiscard]] const NormalWishart& posterior() const { return state_; }

  /// Current MAP moment estimate (paper eqs. 29-32 applied to the running
  /// posterior). Valid from zero observations (then: the prior mode).
  [[nodiscard]] GaussianMoments current_estimate() const;

  /// Predictive log-density of a would-be next sample under the current
  /// posterior (multivariate Student-t). Useful as an online outlier score
  /// for incoming measurements.
  [[nodiscard]] double predictive_log_pdf(const linalg::Vector& x) const;

 private:
  NormalWishart state_;
  std::size_t count_ = 0;
};

}  // namespace bmfusion::core
