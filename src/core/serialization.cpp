#include "core/serialization.hpp"

#include <fstream>
#include <sstream>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace bmfusion::core {

using linalg::Matrix;
using linalg::Vector;

namespace {

constexpr const char* kMagic = "bmfusion-moments v1";

std::vector<std::string> read_tokens(std::istream& in,
                                     const std::string& expected_tag) {
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    std::istringstream is{std::string(t)};
    std::string tag;
    is >> tag;
    if (tag != expected_tag) {
      throw DataError("knowledge file: expected '" + expected_tag +
                      "', got '" + tag + "'");
    }
    std::vector<std::string> tokens;
    std::string tok;
    while (is >> tok) tokens.push_back(tok);
    return tokens;
  }
  throw DataError("knowledge file: missing '" + expected_tag + "' line");
}

double parse_number(const std::string& token) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw DataError("knowledge file: bad number '" + token + "'");
  }
}

}  // namespace

void write_knowledge(std::ostream& out, const NamedKnowledge& nk) {
  const std::size_t d = nk.knowledge.moments.dimension();
  BMFUSION_REQUIRE(nk.metric_names.size() == d,
                   "metric names must match the moment dimension");
  nk.knowledge.moments.validate();
  BMFUSION_REQUIRE(nk.knowledge.nominal.size() == d,
                   "nominal must match the moment dimension");

  out << kMagic << '\n';
  out << "# early-stage knowledge hand-off (see core/serialization.hpp)\n";
  out << "metrics " << join(nk.metric_names, " ") << '\n';
  const auto write_vector = [&](const char* tag, const Vector& v) {
    out << tag;
    for (std::size_t i = 0; i < v.size(); ++i) {
      out << ' ' << format_double(v[i], 17);
    }
    out << '\n';
  };
  write_vector("nominal", nk.knowledge.nominal);
  write_vector("mean", nk.knowledge.moments.mean);
  for (std::size_t r = 0; r < d; ++r) {
    out << "cov";
    for (std::size_t c = 0; c < d; ++c) {
      out << ' ' << format_double(nk.knowledge.moments.covariance(r, c), 17);
    }
    out << '\n';
  }
}

void write_knowledge_file(const std::string& path,
                          const NamedKnowledge& knowledge) {
  std::ofstream out(path);
  if (!out) throw DataError("knowledge file: cannot open for writing: " +
                            path);
  write_knowledge(out, knowledge);
}

NamedKnowledge read_knowledge(std::istream& in) {
  std::string line;
  // Magic line (skipping blank/comment lines).
  while (std::getline(in, line)) {
    const std::string_view t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    if (t != kMagic) {
      throw DataError("knowledge file: bad header '" + std::string(t) + "'");
    }
    break;
  }

  NamedKnowledge nk;
  nk.metric_names = read_tokens(in, "metrics");
  if (nk.metric_names.empty()) {
    throw DataError("knowledge file: no metric names");
  }
  const std::size_t d = nk.metric_names.size();

  const auto to_vector = [&](const std::vector<std::string>& tokens,
                             const char* what) {
    if (tokens.size() != d) {
      throw DataError(std::string("knowledge file: ") + what +
                      " has wrong width");
    }
    Vector v(d);
    for (std::size_t i = 0; i < d; ++i) v[i] = parse_number(tokens[i]);
    return v;
  };
  nk.knowledge.nominal = to_vector(read_tokens(in, "nominal"), "nominal");
  nk.knowledge.moments.mean = to_vector(read_tokens(in, "mean"), "mean");
  nk.knowledge.moments.covariance = Matrix(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    const Vector row = to_vector(read_tokens(in, "cov"), "cov row");
    nk.knowledge.moments.covariance.set_row(r, row);
  }
  nk.knowledge.moments.validate();  // throws on asymmetry / non-SPD
  return nk;
}

NamedKnowledge read_knowledge_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DataError("knowledge file: cannot open for reading: " +
                           path);
  return read_knowledge(in);
}

}  // namespace bmfusion::core
