#include "core/bernoulli_bmf.hpp"

#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "core/cross_validation.hpp"
#include "stats/special.hpp"

namespace bmfusion::core {

double BetaPosterior::map_estimate() const {
  BMFUSION_REQUIRE(alpha + beta > 2.0,
                   "beta map needs alpha + beta > 2 (unimodal posterior)");
  return (alpha - 1.0) / (alpha + beta - 2.0);
}

double BetaPosterior::mean() const { return alpha / (alpha + beta); }

BetaPosterior::Interval BetaPosterior::credible_interval(double level) const {
  BMFUSION_REQUIRE(level > 0.0 && level < 1.0,
                   "credible level must lie in (0, 1)");
  const double tail = 0.5 * (1.0 - level);
  Interval iv;
  iv.lower = stats::beta_quantile(alpha, beta, tail);
  iv.upper = stats::beta_quantile(alpha, beta, 1.0 - tail);
  return iv;
}

BetaPosterior beta_prior_from_early_yield(double early_yield,
                                          double concentration) {
  BMFUSION_REQUIRE(early_yield > 0.0 && early_yield < 1.0,
                   "early yield must lie strictly inside (0, 1)");
  BMFUSION_REQUIRE(concentration > 2.0,
                   "prior concentration must exceed 2 for a modal prior");
  BetaPosterior prior;
  prior.alpha = 1.0 + early_yield * (concentration - 2.0);
  prior.beta = 1.0 + (1.0 - early_yield) * (concentration - 2.0);
  return prior;
}

BetaPosterior update_beta(const BetaPosterior& prior, std::size_t passes,
                          std::size_t total) {
  BMFUSION_REQUIRE(passes <= total, "passes cannot exceed trials");
  BetaPosterior post = prior;
  post.alpha += static_cast<double>(passes);
  post.beta += static_cast<double>(total - passes);
  return post;
}

double beta_bernoulli_log_evidence(const BetaPosterior& prior,
                                   std::size_t passes, std::size_t total) {
  BMFUSION_REQUIRE(passes <= total, "passes cannot exceed trials");
  const BetaPosterior post = update_beta(prior, passes, total);
  return stats::log_beta(post.alpha, post.beta) -
         stats::log_beta(prior.alpha, prior.beta);
}

BernoulliBmfResult estimate_bernoulli_bmf(double early_yield,
                                          std::size_t passes,
                                          std::size_t total,
                                          const BernoulliBmfConfig& config) {
  BMFUSION_REQUIRE(total >= 1, "bmf-bd needs at least one late-stage trial");
  BMFUSION_REQUIRE(config.points >= 2, "need at least two grid points");

  BernoulliBmfResult best;
  best.log_evidence = -std::numeric_limits<double>::infinity();
  for (const double c : log_spaced(config.concentration_min,
                                   config.concentration_max, config.points)) {
    const BetaPosterior prior = beta_prior_from_early_yield(early_yield, c);
    const double evidence = beta_bernoulli_log_evidence(prior, passes, total);
    if (evidence > best.log_evidence) {
      best.log_evidence = evidence;
      best.concentration = c;
      best.posterior = update_beta(prior, passes, total);
    }
  }
  best.yield = best.posterior.map_estimate();
  return best;
}

}  // namespace bmfusion::core
