#include "core/higher_moments.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "stats/moments.hpp"
#include "stats/special.hpp"

namespace bmfusion::core {

using linalg::Matrix;
using linalg::Vector;

HigherMoments estimate_higher_moments(const Matrix& samples) {
  BMFUSION_REQUIRE(samples.rows() >= 4,
                   "higher moments need at least 4 samples");
  const std::size_t n = samples.rows();
  const std::size_t d = samples.cols();
  const Vector mean = stats::sample_mean(samples);

  HigherMoments hm;
  hm.skewness = Vector(d);
  hm.excess_kurtosis = Vector(d);
  for (std::size_t j = 0; j < d; ++j) {
    double m2 = 0.0, m3 = 0.0, m4 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double c = samples(i, j) - mean[j];
      const double c2 = c * c;
      m2 += c2;
      m3 += c2 * c;
      m4 += c2 * c2;
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    m2 *= inv_n;
    m3 *= inv_n;
    m4 *= inv_n;
    BMFUSION_REQUIRE(m2 > 0.0, "degenerate (constant) metric column");
    hm.skewness[j] = m3 / std::pow(m2, 1.5);
    hm.excess_kurtosis[j] = m4 / (m2 * m2) - 3.0;
  }
  return hm;
}

namespace {

/// Cornish-Fisher z-adjustment: maps a Gaussian quantile z to the
/// standardized quantile of the skewed/kurtotic distribution.
double cf_adjust(double z, double skew, double ex_kurt) {
  const double z2 = z * z;
  return z + skew * (z2 - 1.0) / 6.0 +
         ex_kurt * z * (z2 - 3.0) / 24.0 -
         skew * skew * z * (2.0 * z2 - 5.0) / 36.0;
}

}  // namespace

double cornish_fisher_quantile(double mean, double stddev, double skewness,
                               double excess_kurtosis, double p) {
  BMFUSION_REQUIRE(stddev > 0.0, "quantile needs a positive stddev");
  const double z = stats::standard_normal_quantile(p);
  return mean + stddev * cf_adjust(z, skewness, excess_kurtosis);
}

double cornish_fisher_yield(double mean, double stddev, double skewness,
                            double excess_kurtosis, double upper_spec) {
  BMFUSION_REQUIRE(stddev > 0.0, "yield needs a positive stddev");
  const double target = (upper_spec - mean) / stddev;

  // The CF polynomial is only monotone on a central interval; outside it
  // the expansion is invalid anyway. Find the monotone bracket around 0 by
  // scanning, then bisect inside it.
  const auto f = [&](double z) {
    return cf_adjust(z, skewness, excess_kurtosis);
  };
  double lo = 0.0;
  double hi = 0.0;
  constexpr double kScanStep = 0.01;
  while (hi < 12.0 && f(hi + kScanStep) > f(hi)) hi += kScanStep;
  while (lo > -12.0 && f(lo - kScanStep) < f(lo)) lo -= kScanStep;

  if (target <= f(lo)) return stats::standard_normal_cdf(lo);
  if (target >= f(hi)) return stats::standard_normal_cdf(hi);
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return stats::standard_normal_cdf(0.5 * (lo + hi));
}

}  // namespace bmfusion::core
