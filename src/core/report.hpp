// Validation report generator.
//
// Renders one BMF estimation run as the report a validation engineer would
// file: per-metric fused moments with credible intervals, the correlation
// matrix, the selected hyper-parameters with their interpretation, optional
// spec-box yield, and Gaussianity diagnostics.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/bmf_estimator.hpp"
#include "core/yield.hpp"
#include "linalg/matrix.hpp"

namespace bmfusion::core {

struct ReportInput {
  std::vector<std::string> metric_names;
  BmfResult result;                  ///< from BmfEstimator::estimate
  linalg::Matrix late_samples;       ///< the raw late-stage samples used
  std::size_t early_sample_count = 0;
  std::optional<SpecBox> specs;      ///< enables the yield section
  std::uint64_t yield_seed = 1;      ///< MC seed for the yield section
};

/// Writes the formatted report to `out`. Throws ContractError when the
/// metric names do not match the result's dimension.
void write_validation_report(std::ostream& out, const ReportInput& input);

/// Convenience: report as a string.
[[nodiscard]] std::string validation_report(const ReportInput& input);

}  // namespace bmfusion::core
