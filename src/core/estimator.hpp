// Unified moment-estimator interface.
//
// Every estimation strategy in the library — the paper's MLE baseline
// (eqs. 10-11), the headline Bayesian model fusion of Algorithm 1, and the
// univariate BMF prior art — answers the same question: given late-stage
// samples (and, for fusion methods, a nominal late-stage simulation), what
// are the first two moments? MomentEstimator captures exactly that contract
// so experiments, benches and examples can treat strategies polymorphically.
#pragma once

#include <limits>
#include <string_view>
#include <vector>

#include "core/cross_validation.hpp"
#include "core/moments.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace bmfusion::core {

/// Common result of every estimator. Hyper-parameter-free strategies (e.g.
/// MLE) leave kappa0/nu0/score as NaN and report identical moments and
/// scaled_moments.
struct EstimateResult {
  GaussianMoments moments;         ///< estimate in original late-stage units
  GaussianMoments scaled_moments;  ///< estimate in the fused (scaled) space
  double kappa0 = std::numeric_limits<double>::quiet_NaN();  ///< selected
  double nu0 = std::numeric_limits<double>::quiet_NaN();     ///< selected
  /// Model-selection score of the winning hyper-parameters (held-out
  /// log-likelihood for CV, per-sample log evidence for empirical Bayes).
  double score = std::numeric_limits<double>::quiet_NaN();
  /// Full model-selection surface (one entry per (kappa0, nu0) grid point;
  /// disqualified points carry -inf). Empty for hyper-parameter-free
  /// strategies. Consumed by bmf_cli --cv-surface and bmf_doctor.
  std::vector<GridScore> cv_grid;
};

/// Abstract moment estimator (non-virtual interface): the public estimate()
/// overloads run shared contract checks, then dispatch to do_estimate().
class MomentEstimator {
 public:
  virtual ~MomentEstimator() = default;

  /// Short stable identifier ("mle", "bmf", ...) for reports and benches.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Estimates moments from the rows of `samples`. `nominal` is the single
  /// nominal (variation-free) late-stage simulation; estimators that do not
  /// shift by a nominal point ignore it. When non-empty it must match the
  /// sample dimension. Non-finite cells in either input throw DataError with
  /// the offending row/column in the error context (the shared API-boundary
  /// screen for corrupted measurement data); degenerate-but-finite inputs
  /// either recover through the documented numeric fallbacks or throw
  /// NumericError describing what was degenerate.
  [[nodiscard]] EstimateResult estimate(const linalg::Matrix& samples,
                                        const linalg::Vector& nominal) const;

  /// Convenience overload for nominal-free estimators; passes an empty
  /// nominal vector. Estimators that require one throw ContractError.
  [[nodiscard]] EstimateResult estimate(const linalg::Matrix& samples) const;

 protected:
  /// Strategy hook; `samples` is non-empty and `nominal` is either empty or
  /// dimension-matched when this is called.
  [[nodiscard]] virtual EstimateResult do_estimate(
      const linalg::Matrix& samples, const linalg::Vector& nominal) const = 0;
};

/// The paper's baseline (eqs. 10-11) behind the unified interface. Ignores
/// the nominal point; works from a single sample (the covariance of fewer
/// samples than dimensions is rank deficient, as in the paper's baseline).
class MleEstimator final : public MomentEstimator {
 public:
  [[nodiscard]] std::string_view name() const override { return "mle"; }

 protected:
  [[nodiscard]] EstimateResult do_estimate(
      const linalg::Matrix& samples,
      const linalg::Vector& nominal) const override;
};

}  // namespace bmfusion::core
