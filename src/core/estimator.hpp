// Unified moment-estimator interface: batch, stats-only and streaming.
//
// Every estimation strategy in the library — the paper's MLE baseline
// (eqs. 10-11), the headline Bayesian model fusion of Algorithm 1, and the
// univariate BMF prior art — answers the same question: given late-stage
// samples (and, for fusion methods, a nominal late-stage simulation), what
// are the first two moments? MomentEstimator captures exactly that contract
// so experiments, benches and examples can treat strategies polymorphically.
//
// The interface has three entry styles that converge on one estimation core
// per strategy:
//
//   * batch:      estimate(samples[, nominal]) — one matrix, one answer.
//   * stats-only: estimate(SufficientStats[, nominal]) — the caller already
//     summarized its samples (Monte Carlo driver, CV engine, serve layer);
//     no matrix is ever materialized.
//   * streaming:  set_nominal() once, observe()/absorb()/merge() as data
//     arrives, snapshot() whenever an estimate is wanted. State lives in
//     per-fold StatStreams whose deterministic pairwise reduction makes
//     block-aligned shard splits reassemble bitwise (stats/stat_stream.hpp);
//     export_shard()/absorb(StatsShard) move that state across the wire.
//
// Conjugacy is what makes the streaming surface cheap: a new sample is an
// O(d^2) statistics update, and snapshot() is O(d^3) regardless of how many
// samples the stream has absorbed.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "core/cross_validation.hpp"
#include "core/moments.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "stats/stat_stream.hpp"
#include "stats/stat_wire.hpp"

namespace bmfusion::core {

/// Common result of every estimator. Hyper-parameter-free strategies (e.g.
/// MLE) leave kappa0/nu0/score as NaN and report identical moments and
/// scaled_moments.
struct EstimateResult {
  GaussianMoments moments;         ///< estimate in original late-stage units
  GaussianMoments scaled_moments;  ///< estimate in the fused (scaled) space
  double kappa0 = std::numeric_limits<double>::quiet_NaN();  ///< selected
  double nu0 = std::numeric_limits<double>::quiet_NaN();     ///< selected
  /// Model-selection score of the winning hyper-parameters (held-out
  /// log-likelihood for CV, per-sample log evidence for empirical Bayes).
  double score = std::numeric_limits<double>::quiet_NaN();
  /// Full model-selection surface (one entry per (kappa0, nu0) grid point;
  /// disqualified points carry -inf). Empty for hyper-parameter-free
  /// strategies. Consumed by bmf_cli --cv-surface and bmf_doctor.
  std::vector<GridScore> cv_grid;
};

/// Abstract moment estimator (non-virtual interface): the public entry
/// points run shared contract checks and the non-finite-input screen, then
/// dispatch to the strategy hooks.
class MomentEstimator {
 public:
  virtual ~MomentEstimator() = default;

  /// Short stable identifier ("mle", "bmf", ...) for reports and benches.
  [[nodiscard]] virtual std::string_view name() const = 0;

  // --- Batch -------------------------------------------------------------

  /// Estimates moments from the rows of `samples`. `nominal` is the single
  /// nominal (variation-free) late-stage simulation; estimators that do not
  /// shift by a nominal point ignore it. When non-empty it must match the
  /// sample dimension. Non-finite cells in either input throw DataError with
  /// the offending row/column in the error context (the shared API-boundary
  /// screen for corrupted measurement data); degenerate-but-finite inputs
  /// either recover through the documented numeric fallbacks or throw
  /// NumericError describing what was degenerate.
  [[nodiscard]] EstimateResult estimate(const linalg::Matrix& samples,
                                        const linalg::Vector& nominal) const;

  /// Convenience overload for nominal-free estimators; passes an empty
  /// nominal vector. Estimators that require one throw ContractError.
  [[nodiscard]] EstimateResult estimate(const linalg::Matrix& samples) const;

  // --- Stats-only --------------------------------------------------------

  /// Estimates from prebuilt raw-space sufficient statistics (no sample
  /// matrix reconversion). Hyper-parameter-selecting strategies cannot fold
  /// a single summary, so they select by model evidence here. Throws
  /// ContractError from strategies that genuinely need raw samples.
  [[nodiscard]] EstimateResult estimate(const SufficientStats& stats,
                                        const linalg::Vector& nominal) const;
  [[nodiscard]] EstimateResult estimate(const SufficientStats& stats) const;

  // --- Streaming ---------------------------------------------------------

  /// Fixes the late-stage nominal point the stream is relative to. Must be
  /// called before the first observe/absorb for strategies that shift by a
  /// nominal (they accumulate in their normalized space); immutable once
  /// samples have been observed (ContractError).
  void set_nominal(const linalg::Vector& nominal);
  [[nodiscard]] const linalg::Vector& nominal() const { return nominal_; }

  /// Folds one raw-space sample (or every row of a batch) into the stream.
  /// Samples are assigned round-robin to stream_folds() fold accumulators —
  /// the same i % folds split the batch CV engine uses — so snapshot() can
  /// cross-validate. O(d^2) per sample; non-finite cells throw DataError.
  void observe(const linalg::Vector& sample);
  void observe(const linalg::Matrix& samples);

  /// Folds a pre-summarized raw-space sample set into the stream (assigned
  /// round-robin over absorb calls). Exact in set semantics; not part of
  /// the bitwise block grid.
  void absorb(const SufficientStats& stats);

  /// Merges a wire-format shard (produced by export_shard of an equally
  /// configured estimator, so its folds are already in this estimator's
  /// stream space). Shard estimator tags must match name() when present;
  /// fold counts must agree; a shard nominal adopts into an untouched
  /// stream and must match an established one. Throws DataError on
  /// mismatched shards.
  void absorb(const stats::StatsShard& shard);

  /// Appends `other`'s stream after this one, fold by fold (concatenation
  /// semantics). Both estimators must agree on name(), fold count,
  /// dimension and nominal. Block-aligned splits reassemble bitwise.
  void merge(const MomentEstimator& other);

  /// Estimate from everything observed so far. Requires >= 1 sample (some
  /// strategies need more; they throw the same errors as their batch path).
  /// Repeatable: snapshot() does not disturb the stream.
  [[nodiscard]] EstimateResult snapshot() const;

  /// Samples observed/absorbed/merged into the stream so far.
  [[nodiscard]] std::size_t observed_count() const { return observed_; }

  /// The stream state as a wire-format shard (fold streams + nominal +
  /// name() tag), ready for serialize_shard / shard_to_json.
  [[nodiscard]] stats::StatsShard export_shard(std::uint64_t shard_id) const;

  /// Discards all streamed samples; keeps the nominal point.
  void reset_stream();

  /// Per-fold stream state (introspection for tests and the serve layer).
  [[nodiscard]] const std::vector<stats::StatStream>& streams() const {
    return streams_;
  }

 protected:
  /// Batch strategy hook; `samples` is non-empty and `nominal` is either
  /// empty or dimension-matched when this is called.
  [[nodiscard]] virtual EstimateResult do_estimate(
      const linalg::Matrix& samples, const linalg::Vector& nominal) const = 0;

  /// Stats-only strategy hook; `stats` is finite and non-empty, `nominal`
  /// empty or dimension-matched. Default: ContractError ("does not support
  /// estimation from sufficient statistics").
  [[nodiscard]] virtual EstimateResult do_estimate_stats(
      const SufficientStats& stats, const linalg::Vector& nominal) const;

  /// Snapshot strategy hook: one SufficientStats per fold (empty folds are
  /// dimension-matched with count 0), in this estimator's *stream space*
  /// (see stream_transform). Default: ContractError ("does not support
  /// streaming").
  [[nodiscard]] virtual EstimateResult do_snapshot(
      const std::vector<SufficientStats>& fold_totals,
      const linalg::Vector& nominal) const;

  /// Number of fold accumulators the stream maintains (queried when the
  /// first sample arrives). Strategies that cross-validate return their
  /// fold count; default 1.
  [[nodiscard]] virtual std::size_t stream_folds() const { return 1; }

  /// Maps a raw-space sample into the space the stream accumulates in.
  /// Default: identity. BMF normalizes here so fold statistics are
  /// accumulated from O(1)-centered values instead of being algebraically
  /// re-centered at snapshot time (which would cancel catastrophically for
  /// metrics whose nominal dwarfs their spread).
  [[nodiscard]] virtual linalg::Vector stream_transform(
      const linalg::Vector& sample) const;

  /// Same map for pre-summarized statistics (absorb path). Default:
  /// identity. Transforming a summary is exact only in real arithmetic —
  /// see ShiftScale::apply(SufficientStats).
  [[nodiscard]] virtual SufficientStats stream_transform_stats(
      const SufficientStats& stats) const;

  /// Notification that set_nominal changed the nominal point (caches of
  /// nominal-derived transforms invalidate here). Default: no-op.
  virtual void on_nominal_changed() {}

 private:
  /// Shared body of the two observe overloads, minus the sample counter:
  /// the batch overload counts once per batch, not per row.
  void observe_row(const linalg::Vector& sample);

  /// Sizes the fold accumulators on first use and pins the dimension.
  void ensure_streams(std::size_t dimension);

  std::vector<stats::StatStream> streams_;  ///< one per fold; lazy init
  linalg::Vector nominal_;                  ///< empty until set_nominal
  std::size_t observed_ = 0;                ///< samples streamed so far
  std::size_t absorb_cursor_ = 0;           ///< round-robin fold for absorb
};

/// The paper's baseline (eqs. 10-11) behind the unified interface. Ignores
/// the nominal point; works from a single sample (the covariance of fewer
/// samples than dimensions is rank deficient, as in the paper's baseline).
/// Streams raw samples into a single fold.
class MleEstimator final : public MomentEstimator {
 public:
  [[nodiscard]] std::string_view name() const override { return "mle"; }

 protected:
  [[nodiscard]] EstimateResult do_estimate(
      const linalg::Matrix& samples,
      const linalg::Vector& nominal) const override;
  [[nodiscard]] EstimateResult do_estimate_stats(
      const SufficientStats& stats,
      const linalg::Vector& nominal) const override;
  [[nodiscard]] EstimateResult do_snapshot(
      const std::vector<SufficientStats>& fold_totals,
      const linalg::Vector& nominal) const override;
};

}  // namespace bmfusion::core
