// Persistence of early-stage knowledge.
//
// In a real flow the early-stage (schematic) team runs its Monte Carlo once
// and hands the result to every later validation step; this module defines
// that hand-off artifact: a single self-describing text file carrying the
// metric names, nominal vector, mean vector and covariance matrix.
//
// Format (line-oriented, '#' comments, locale-independent):
//   bmfusion-moments v1
//   metrics <name1> <name2> ...
//   nominal <d values>
//   mean    <d values>
//   cov     <d lines of d values>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/bmf_estimator.hpp"
#include "core/moments.hpp"

namespace bmfusion::core {

/// Early-stage knowledge plus the metric names it applies to.
struct NamedKnowledge {
  std::vector<std::string> metric_names;
  EarlyStageKnowledge knowledge;
};

/// Writes the hand-off file. Values use 17 significant digits so the
/// moments round-trip exactly.
void write_knowledge(std::ostream& out, const NamedKnowledge& knowledge);
void write_knowledge_file(const std::string& path,
                          const NamedKnowledge& knowledge);

/// Parses the hand-off file. Throws DataError on malformed input and
/// validates the covariance (symmetry + positive definiteness).
[[nodiscard]] NamedKnowledge read_knowledge(std::istream& in);
[[nodiscard]] NamedKnowledge read_knowledge_file(const std::string& path);

}  // namespace bmfusion::core
