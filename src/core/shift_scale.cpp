#include "core/shift_scale.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/contracts.hpp"

namespace bmfusion::core {

using linalg::Matrix;
using linalg::Vector;

ShiftScale::ShiftScale(Vector shift, Vector scale)
    : shift_(std::move(shift)), scale_(std::move(scale)) {
  BMFUSION_REQUIRE(shift_.size() == scale_.size(),
                   "shift/scale size mismatch");
  BMFUSION_REQUIRE(shift_.size() >= 1, "transform needs dimension >= 1");
  for (std::size_t i = 0; i < scale_.size(); ++i) {
    if (!(scale_[i] > 0.0) || !std::isfinite(scale_[i])) {
      std::ostringstream os;
      os << "shift/scale: scale entry for dimension " << i
         << " must be positive and finite (got " << scale_[i] << ")";
      throw ConfigError(os.str());
    }
  }
}

Vector ShiftScale::apply(const Vector& x) const {
  BMFUSION_REQUIRE(x.size() == dimension(), "transform dimension mismatch");
  Vector y(dimension());
  for (std::size_t i = 0; i < dimension(); ++i) {
    y[i] = (x[i] - shift_[i]) / scale_[i];
  }
  return y;
}

Matrix ShiftScale::apply(const Matrix& samples) const {
  BMFUSION_REQUIRE(samples.cols() == dimension(),
                   "transform dimension mismatch");
  Matrix out(samples.rows(), samples.cols());
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    for (std::size_t c = 0; c < dimension(); ++c) {
      out(r, c) = (samples(r, c) - shift_[c]) / scale_[c];
    }
  }
  return out;
}

GaussianMoments ShiftScale::apply(const GaussianMoments& moments) const {
  BMFUSION_REQUIRE(moments.dimension() == dimension(),
                   "transform dimension mismatch");
  GaussianMoments out;
  out.mean = apply(moments.mean);
  out.covariance = Matrix(dimension(), dimension());
  for (std::size_t i = 0; i < dimension(); ++i) {
    for (std::size_t j = 0; j < dimension(); ++j) {
      out.covariance(i, j) =
          moments.covariance(i, j) / (scale_[i] * scale_[j]);
    }
  }
  return out;
}

SufficientStats ShiftScale::apply(const SufficientStats& stats) const {
  BMFUSION_REQUIRE(stats.dimension() == dimension(),
                   "transform dimension mismatch");
  BMFUSION_REQUIRE(stats.count() >= 1,
                   "transforming sufficient stats needs >= 1 sample");
  const std::size_t d = dimension();
  const double n = static_cast<double>(stats.count());
  Vector sum(d);
  for (std::size_t r = 0; r < d; ++r) {
    sum[r] = (stats.sum()[r] - n * shift_[r]) / scale_[r];
  }
  linalg::Matrix outer(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      outer(r, c) = (stats.sum_outer()(r, c) - shift_[c] * stats.sum()[r] -
                     shift_[r] * stats.sum()[c] + n * shift_[r] * shift_[c]) /
                    (scale_[r] * scale_[c]);
    }
  }
  return SufficientStats::from_raw(stats.count(), std::move(sum),
                                   std::move(outer));
}

Vector ShiftScale::invert(const Vector& y) const {
  BMFUSION_REQUIRE(y.size() == dimension(), "transform dimension mismatch");
  Vector x(dimension());
  for (std::size_t i = 0; i < dimension(); ++i) {
    x[i] = y[i] * scale_[i] + shift_[i];
  }
  return x;
}

GaussianMoments ShiftScale::invert(const GaussianMoments& moments) const {
  BMFUSION_REQUIRE(moments.dimension() == dimension(),
                   "transform dimension mismatch");
  GaussianMoments out;
  out.mean = invert(moments.mean);
  out.covariance = Matrix(dimension(), dimension());
  for (std::size_t i = 0; i < dimension(); ++i) {
    for (std::size_t j = 0; j < dimension(); ++j) {
      out.covariance(i, j) =
          moments.covariance(i, j) * (scale_[i] * scale_[j]);
    }
  }
  return out;
}

StageTransforms make_stage_transforms(const Vector& early_nominal,
                                      const Vector& late_nominal,
                                      const GaussianMoments& early_moments) {
  early_moments.validate();
  const std::size_t d = early_moments.dimension();
  BMFUSION_REQUIRE(early_nominal.size() == d && late_nominal.size() == d,
                   "nominal vectors must match the moment dimension");
  Vector sigma(d);
  for (std::size_t i = 0; i < d; ++i) {
    const double variance = early_moments.covariance(i, i);
    // A (near-)zero early-stage variance would make this dimension's scale
    // collapse and every scaled sample blow up; name the dimension instead
    // of failing later with a generic scale complaint. The 1e-280 floor only
    // rejects exact zeros and denormal-level degeneracy, not legitimately
    // small physical units.
    if (!(variance > 0.0) || !std::isfinite(variance) || variance < 1e-280) {
      std::ostringstream os;
      os << "shift/scale: early-stage variance for dimension " << i
         << " is degenerate (" << variance
         << "); cannot normalize by its standard deviation";
      throw NumericError(os.str(), ErrorContext{}
                                       .with_operation("make_stage_transforms")
                                       .with_dimension(d)
                                       .with_index(i)
                                       .with_value(variance));
    }
    sigma[i] = std::sqrt(variance);
  }
  return StageTransforms{ShiftScale(early_nominal, sigma),
                         ShiftScale(late_nominal, sigma)};
}

}  // namespace bmfusion::core
