#include "log/logger.hpp"

#include <algorithm>
#include <cstdio>

#include "telemetry/clock.hpp"
#include "telemetry/metrics.hpp"

namespace bmfusion::log {

Logger& Logger::instance() {
  // Leaked on purpose: see the declaration.
  static Logger* const logger = new Logger();
  return *logger;
}

void Logger::refresh_min_level() noexcept {
  // The ring is always a consumer; sinks only matter when one is active.
  // (stderr defaults to enabled, so in practice min == ring_level.)
  int floor = ring_level_.load(std::memory_order_relaxed);
  if (stderr_enabled_.load(std::memory_order_relaxed) ||
      json_sink_.is_open()) {
    floor = std::min(floor, sink_level_.load(std::memory_order_relaxed));
  }
  min_level_.store(floor, std::memory_order_relaxed);
}

void Logger::set_level(Level level) noexcept {
  sink_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  refresh_min_level();
}

void Logger::set_ring_level(Level level) noexcept {
  ring_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  refresh_min_level();
}

void Logger::set_stderr_enabled(bool enabled) noexcept {
  stderr_enabled_.store(enabled, std::memory_order_relaxed);
  refresh_min_level();
}

bool Logger::attach_json_file(const std::string& path) {
  const std::lock_guard<std::mutex> lock(io_mutex_);
  const bool ok = json_sink_.open(path);
  if (ok) dump_armed_.store(true, std::memory_order_relaxed);
  refresh_min_level();
  return ok;
}

void Logger::detach_json_file() {
  const std::lock_guard<std::mutex> lock(io_mutex_);
  json_sink_.flush();
  json_sink_.close();
  refresh_min_level();
}

void Logger::flush() {
  const std::lock_guard<std::mutex> lock(io_mutex_);
  json_sink_.flush();
}

void Logger::reset_dump_budget(std::uint32_t max_dumps) noexcept {
  dumps_done_.store(0, std::memory_order_relaxed);
  max_dumps_.store(max_dumps, std::memory_order_relaxed);
}

void Logger::write_to_sinks(const LogRecord& record) {
  const std::lock_guard<std::mutex> lock(io_mutex_);
  if (stderr_enabled_.load(std::memory_order_relaxed)) {
    const std::string line = format_text_line(record);
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  json_sink_.write(record);
}

void Logger::log(Level level, const char* message, const char* file, int line,
                 std::initializer_list<Field> fields) noexcept {
  try {
    LogRecord record;
    record.time_ns = telemetry::now_ns();
    record.level = level;
    record.message = message;
    record.file = file;
    record.line = line;
    record.thread =
        static_cast<std::uint32_t>(telemetry::detail::thread_slot());
    for (const Field& field : fields) {
      if (record.field_count >= kMaxLogFields) break;
      record.fields[record.field_count++] = field;
    }
    if (static_cast<int>(level) >=
        ring_level_.load(std::memory_order_relaxed)) {
      FlightRecorder::instance().record(record);
    }
    if (static_cast<int>(level) >=
        sink_level_.load(std::memory_order_relaxed)) {
      write_to_sinks(record);
    }
  } catch (...) {
    // Logging must never propagate: a full disk or bad stream drops the
    // record, nothing else.
  }
}

void Logger::dump_flight_recorder(const char* reason,
                                  std::string_view detail) {
  const std::vector<LogRecord> records = FlightRecorder::instance().snapshot();
  const std::lock_guard<std::mutex> lock(io_mutex_);
  const bool to_stderr = stderr_enabled_.load(std::memory_order_relaxed);
  if (to_stderr) {
    std::fprintf(stderr,
                 "--- flight recorder dump (%s): %.*s\n"
                 "--- last %zu structured events, oldest first:\n",
                 reason, static_cast<int>(detail.size()), detail.data(),
                 records.size());
  }
  if (json_sink_.is_open()) {
    json_sink_.write_raw_line(
        "{\"flight_recorder_dump\": {\"reason\": \"" +
        json_escape_text(reason) + "\", \"detail\": \"" +
        json_escape_text(detail) + "\", \"events\": " +
        std::to_string(records.size()) + "}}");
  }
  for (const LogRecord& record : records) {
    if (to_stderr) {
      const std::string line = format_text_line(record);
      std::fprintf(stderr, "    %s\n", line.c_str());
    }
    json_sink_.write(record);
  }
  if (to_stderr) std::fprintf(stderr, "--- end of flight recorder dump\n");
  json_sink_.flush();
}

void Logger::on_error(const char* kind, const std::string& what) noexcept {
  try {
    // Recoverable numeric errors are control flow here (CV disqualifies
    // grid points by catching them), so the event itself is info-level and
    // the expensive dump is armed + rate-limited.
    log(Level::kInfo, "error raised", __FILE__, __LINE__,
        {f("kind", kind), f("what", std::string_view(what))});
    if (!dump_armed_.load(std::memory_order_relaxed)) return;
    std::uint32_t done = dumps_done_.load(std::memory_order_relaxed);
    const std::uint32_t budget = max_dumps_.load(std::memory_order_relaxed);
    do {
      if (done >= budget) return;
    } while (!dumps_done_.compare_exchange_weak(done, done + 1,
                                                std::memory_order_relaxed));
    dump_flight_recorder(kind, what);
  } catch (...) {
    // Never let diagnostics interfere with the real error being thrown.
  }
}

namespace detail {

void notify_error(const char* kind, const std::string& what) noexcept {
  thread_local bool in_hook = false;
  if (in_hook) return;  // an error raised while logging an error: drop it
  in_hook = true;
  Logger::instance().on_error(kind, what);
  in_hook = false;
}

}  // namespace detail

}  // namespace bmfusion::log
