// Umbrella header and macro layer for the structured-logging subsystem.
//
// Instrumented code uses the BMF_LOG_* macros exclusively:
//
//   BMF_LOG_DEBUG("cv fold disqualified", f("kappa0", k), f("nu0", nu));
//   BMF_LOG_WARN("cholesky jitter applied", f("ridge", r), f("dim", n));
//
// Field helpers (log/record.hpp) accept integral, double, literal-string
// and copied-string values; `message`, `__FILE__` and field keys are string
// literals so records can sit in the flight-recorder ring indefinitely.
//
// Two filters apply, mirroring the telemetry design:
//   * Compile-time floor: BMFUSION_LOG_MIN_LEVEL (0=debug .. 3=error,
//     default 0; override with -DBMFUSION_LOG_FLOOR=<level> at configure
//     time). Macros below the floor expand to log::detail::noop(...) —
//     arguments still type-check, the optimizer removes the call entirely.
//   * Runtime thresholds: Logger::passes() is one relaxed atomic load; a
//     record that passes is copied into the lock-free flight-recorder ring
//     (allocation-free, always) and formatted for stderr / the JSON-lines
//     file only when it also clears the sink threshold (default kWarn).
//
// On any NumericError/DataError construction the logger is notified and —
// when a dump target is armed — replays the ring next to the error context:
// the flight-recorder answers "what happened just before the failure"
// without running debug sinks all the time.
#pragma once

#include "log/level.hpp"
#include "log/logger.hpp"
#include "log/record.hpp"
#include "log/recorder.hpp"

#ifndef BMFUSION_LOG_MIN_LEVEL
#define BMFUSION_LOG_MIN_LEVEL 0
#endif

/// Shared expansion for every enabled level: one relaxed-load pre-filter,
/// then the full emission path.
#define BMF_LOG_AT_LEVEL(level, message, ...)                               \
  do {                                                                      \
    ::bmfusion::log::Logger& bmf_log_logger_ =                              \
        ::bmfusion::log::Logger::instance();                                \
    if (bmf_log_logger_.passes(level)) {                                    \
      bmf_log_logger_.log(level, message, __FILE__, __LINE__,               \
                          {__VA_ARGS__});                                   \
    }                                                                       \
  } while (0)

#if BMFUSION_LOG_MIN_LEVEL <= 0
#define BMF_LOG_DEBUG(...) \
  BMF_LOG_AT_LEVEL(::bmfusion::log::Level::kDebug, __VA_ARGS__)
#else
#define BMF_LOG_DEBUG(...) ::bmfusion::log::detail::noop(__VA_ARGS__)
#endif

#if BMFUSION_LOG_MIN_LEVEL <= 1
#define BMF_LOG_INFO(...) \
  BMF_LOG_AT_LEVEL(::bmfusion::log::Level::kInfo, __VA_ARGS__)
#else
#define BMF_LOG_INFO(...) ::bmfusion::log::detail::noop(__VA_ARGS__)
#endif

#if BMFUSION_LOG_MIN_LEVEL <= 2
#define BMF_LOG_WARN(...) \
  BMF_LOG_AT_LEVEL(::bmfusion::log::Level::kWarn, __VA_ARGS__)
#else
#define BMF_LOG_WARN(...) ::bmfusion::log::detail::noop(__VA_ARGS__)
#endif

#if BMFUSION_LOG_MIN_LEVEL <= 3
#define BMF_LOG_ERROR(...) \
  BMF_LOG_AT_LEVEL(::bmfusion::log::Level::kError, __VA_ARGS__)
#else
#define BMF_LOG_ERROR(...) ::bmfusion::log::detail::noop(__VA_ARGS__)
#endif
