#include "log/recorder.hpp"

#include <algorithm>

namespace bmfusion::log {

FlightRecorder& FlightRecorder::instance() {
  // Leaked on purpose: see the declaration. The one-time ring allocation
  // happens on first use, before any steady-state hot loop.
  static FlightRecorder* const recorder = new FlightRecorder();
  return *recorder;
}

std::vector<LogRecord> FlightRecorder::snapshot() const {
  const std::uint64_t total = cursor_.load(std::memory_order_acquire);
  const std::uint64_t valid = std::min<std::uint64_t>(total, kCapacity);
  std::vector<LogRecord> records;
  records.reserve(static_cast<std::size_t>(valid));
  for (std::uint64_t idx = total - valid; idx < total; ++idx) {
    const Slot& slot = slots_[idx & (kCapacity - 1)];
    if (slot.seq.load(std::memory_order_acquire) == (idx + 1) << 1) {
      records.push_back(slot.record);
    }
  }
  return records;
}

void FlightRecorder::reset() noexcept {
  for (std::size_t i = 0; i < kCapacity; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
  }
  cursor_.store(0, std::memory_order_relaxed);
}

}  // namespace bmfusion::log
