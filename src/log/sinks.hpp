// Record formatting and the two text sinks: human-readable stderr lines and
// machine-readable JSON lines.
//
// Formatting is split out as free functions so the exact output is unit-
// testable without touching process-global state. Sinks themselves are
// plain serialized writers; the Logger (logger.hpp) owns the single I/O
// mutex, calls sinks only for records that clear the sink threshold, and
// never calls them from the allocation-free ring path.
#pragma once

#include <fstream>
#include <string>

#include "log/record.hpp"

namespace bmfusion::log {

/// Human-readable single line, e.g.
///   [ 12.345678] warn  dc.cpp:301 damped ladder entered dies=3 gmin=1e-09
/// The timestamp is seconds since the first record formatted in this
/// process (monotonic clock), matching the trace-span timeline.
[[nodiscard]] std::string format_text_line(const LogRecord& record);

/// One JSON object per record, newline-free, e.g.
///   {"t_ns":123,"level":"warn","msg":"...","file":"...","line":3,
///    "thread":0,"fields":{"ridge":1e-10,"attempt":2}}
/// String values are escaped per RFC 8259 (quotes, backslash, control
/// characters as \uXXXX shortcuts where JSON defines them).
[[nodiscard]] std::string format_json_line(const LogRecord& record);

/// JSON string escaping used by format_json_line; exposed for the doctor's
/// own emitters and for tests.
[[nodiscard]] std::string json_escape_text(std::string_view text);

/// JSON-lines file sink. open() truncates; write() appends one line per
/// record. Not internally synchronized — the Logger serializes access.
class JsonLinesSink {
 public:
  /// Opens `path` for writing (truncating). Returns false on failure.
  bool open(const std::string& path);
  void close();
  [[nodiscard]] bool is_open() const { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  void write(const LogRecord& record);
  /// Writes a pre-formatted JSON line (used by the flight-recorder dump
  /// header). The caller guarantees `line` is one valid JSON document.
  void write_raw_line(const std::string& line);
  void flush();

 private:
  std::ofstream out_;
  std::string path_;
};

}  // namespace bmfusion::log
