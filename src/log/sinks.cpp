#include "log/sinks.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "telemetry/clock.hpp"

namespace bmfusion::log {

namespace {

/// Shortest round-trip double formatting, mirroring the telemetry exporters.
std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Strips the directory part so text lines show "dc.cpp:301", not the whole
/// build-tree path.
const char* basename_of(const char* path) {
  if (path == nullptr) return "?";
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

/// Timestamp origin shared by every text line in the process, so relative
/// times line up across threads.
std::uint64_t process_origin_ns() {
  static const std::uint64_t origin = telemetry::now_ns();
  return origin;
}

void append_field_value(std::ostringstream& out, const Field& field,
                        bool json) {
  switch (field.kind) {
    case Field::Kind::kInt:
      out << field.value.i;
      break;
    case Field::Kind::kUint:
      out << field.value.u;
      break;
    case Field::Kind::kReal:
      if (json) {
        // JSON has no literal for non-finite numbers; quote them.
        if (std::isfinite(field.value.real)) {
          out << format_double(field.value.real);
        } else {
          out << '"' << format_double(field.value.real) << '"';
        }
      } else {
        out << format_double(field.value.real);
      }
      break;
    case Field::Kind::kLiteral: {
      const char* text = field.value.literal ? field.value.literal : "";
      if (json) {
        out << '"' << json_escape_text(text) << '"';
      } else {
        out << text;
      }
      break;
    }
    case Field::Kind::kText:
      if (json) {
        out << '"' << json_escape_text(field.text) << '"';
      } else {
        out << field.text;
      }
      break;
    case Field::Kind::kNone:
      out << (json ? "null" : "?");
      break;
  }
}

}  // namespace

std::string json_escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

std::string format_text_line(const LogRecord& record) {
  std::ostringstream out;
  const std::uint64_t origin = process_origin_ns();
  const double rel_s =
      record.time_ns >= origin
          ? static_cast<double>(record.time_ns - origin) * 1e-9
          : 0.0;
  char stamp[48];
  std::snprintf(stamp, sizeof(stamp), "[%11.6f] %-5s ", rel_s,
                level_name(record.level));
  out << stamp << basename_of(record.file) << ':' << record.line << ' '
      << (record.message ? record.message : "?");
  const std::size_t count =
      std::min<std::size_t>(record.field_count, kMaxLogFields);
  for (std::size_t i = 0; i < count; ++i) {
    const Field& field = record.fields[i];
    out << ' ' << (field.key ? field.key : "?") << '=';
    append_field_value(out, field, /*json=*/false);
  }
  return out.str();
}

std::string format_json_line(const LogRecord& record) {
  std::ostringstream out;
  out << "{\"t_ns\": " << record.time_ns << ", \"level\": \""
      << level_name(record.level) << "\", \"msg\": \""
      << json_escape_text(record.message ? record.message : "") << "\""
      << ", \"file\": \"" << json_escape_text(basename_of(record.file))
      << "\", \"line\": " << record.line
      << ", \"thread\": " << record.thread << ", \"fields\": {";
  const std::size_t count =
      std::min<std::size_t>(record.field_count, kMaxLogFields);
  for (std::size_t i = 0; i < count; ++i) {
    const Field& field = record.fields[i];
    out << (i ? ", " : "") << '"'
        << json_escape_text(field.key ? field.key : "?") << "\": ";
    append_field_value(out, field, /*json=*/true);
  }
  out << "}}";
  return out.str();
}

bool JsonLinesSink::open(const std::string& path) {
  close();
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    std::fprintf(stderr, "log: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  path_ = path;
  return true;
}

void JsonLinesSink::close() {
  if (out_.is_open()) out_.close();
  path_.clear();
}

void JsonLinesSink::write(const LogRecord& record) {
  if (!out_.is_open()) return;
  out_ << format_json_line(record) << '\n';
}

void JsonLinesSink::write_raw_line(const std::string& line) {
  if (!out_.is_open()) return;
  out_ << line << '\n';
}

void JsonLinesSink::flush() {
  if (out_.is_open()) out_.flush();
}

}  // namespace bmfusion::log
