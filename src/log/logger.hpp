// Process-wide structured logger: runtime level filtering, thread-safe
// sinks, and the flight-recorder dump-on-error policy.
//
// Fan-out per record (see log.hpp for the macro layer):
//   1. Ring: records at or above ring_level() are copied into the
//      FlightRecorder — lock-free, allocation-free, always on. This is the
//      path hot loops take; at the default thresholds it is the ONLY path
//      debug/info events take, so the Monte Carlo steady state stays at
//      zero allocations per sample with logging compiled in.
//   2. Sinks: records at or above sink_level() are formatted and written to
//      stderr (when enabled) and to the attached JSON-lines file (when
//      open), serialized by one mutex. Formatting allocates; it only runs
//      for records the operator asked to see.
//
// Dump-on-error: contracts.cpp notifies the logger whenever a NumericError
// or DataError is constructed. When a dump target is armed (attaching a
// JSON-lines file arms it; set_dump_on_error overrides), the flight
// recorder's last kCapacity records are replayed to the sinks alongside the
// error text — rate-limited, because this library treats recoverable
// NumericErrors as control flow (CV grid-point disqualification).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>

#include "log/recorder.hpp"
#include "log/sinks.hpp"

namespace bmfusion::log {

class Logger {
 public:
  /// Default number of flight-recorder dumps per process before the
  /// rate-limiter swallows further ones.
  static constexpr std::uint32_t kDefaultMaxDumps = 5;

  /// The process-wide instance. Intentionally leaked (like the telemetry
  /// Registry) so log sites on parked pool workers never observe a dead
  /// logger during static teardown.
  static Logger& instance();

  // ------------------------------------------------------------ thresholds

  /// Sink threshold: records below it skip stderr and the JSON file.
  /// Default kWarn.
  void set_level(Level level) noexcept;
  [[nodiscard]] Level level() const noexcept {
    return static_cast<Level>(sink_level_.load(std::memory_order_relaxed));
  }

  /// Ring threshold: records below it skip the flight recorder.
  /// Default kDebug (capture everything the compile floor lets through).
  void set_ring_level(Level level) noexcept;
  [[nodiscard]] Level ring_level() const noexcept {
    return static_cast<Level>(ring_level_.load(std::memory_order_relaxed));
  }

  /// Cheapest possible pre-filter for the macro layer: one relaxed load
  /// against min(ring_level, sink_level).
  [[nodiscard]] bool passes(Level level) const noexcept {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }

  // ----------------------------------------------------------------- sinks

  /// Enables/disables the stderr text sink (enabled by default; the
  /// kWarn default sink threshold keeps it quiet in practice).
  void set_stderr_enabled(bool enabled) noexcept;
  [[nodiscard]] bool stderr_enabled() const noexcept {
    return stderr_enabled_.load(std::memory_order_relaxed);
  }

  /// Opens `path` as the JSON-lines sink (truncating) and arms the
  /// flight-recorder dump. Returns false on I/O failure.
  bool attach_json_file(const std::string& path);
  void detach_json_file();
  void flush();

  // -------------------------------------------------------- flight record

  /// Overrides the dump-on-error arming (attach_json_file arms it
  /// implicitly). A dump replays the ring to every active sink.
  void set_dump_on_error(bool armed) noexcept {
    dump_armed_.store(armed, std::memory_order_relaxed);
  }
  [[nodiscard]] bool dump_on_error() const noexcept {
    return dump_armed_.load(std::memory_order_relaxed);
  }

  /// Resets the dump rate-limiter and sets its budget (tests; the default
  /// budget is kDefaultMaxDumps per process).
  void reset_dump_budget(std::uint32_t max_dumps = kDefaultMaxDumps) noexcept;

  /// Number of flight-recorder dumps performed so far.
  [[nodiscard]] std::uint32_t dump_count() const noexcept {
    return dumps_done_.load(std::memory_order_relaxed);
  }

  /// Replays the flight recorder to the active sinks, bypassing the rate
  /// limiter. `reason` must be a literal; `detail` is free text (the error
  /// message). Used by the error hook and by CLI exit paths.
  void dump_flight_recorder(const char* reason, std::string_view detail);

  // ------------------------------------------------------------- emission

  /// Emits one record: ring copy when `level` clears ring_level(), sink
  /// write when it clears level(). The macro layer guarantees `message`,
  /// `file` and field keys are literals.
  void log(Level level, const char* message, const char* file, int line,
           std::initializer_list<Field> fields) noexcept;

  /// Called by the NumericError/DataError constructors (contracts.cpp):
  /// records an info-level event carrying the error text and, when armed,
  /// dumps the flight recorder (rate-limited, recursion-guarded).
  void on_error(const char* kind, const std::string& what) noexcept;

 private:
  Logger() = default;
  void refresh_min_level() noexcept;
  void write_to_sinks(const LogRecord& record);

  std::atomic<int> sink_level_{static_cast<int>(Level::kWarn)};
  std::atomic<int> ring_level_{static_cast<int>(Level::kDebug)};
  std::atomic<int> min_level_{static_cast<int>(Level::kDebug)};
  std::atomic<bool> stderr_enabled_{true};
  std::atomic<bool> dump_armed_{false};
  std::atomic<std::uint32_t> dumps_done_{0};
  std::atomic<std::uint32_t> max_dumps_{kDefaultMaxDumps};

  std::mutex io_mutex_;  ///< serializes stderr + file writes and (de)attach
  JsonLinesSink json_sink_;
};

namespace detail {

/// Discards its arguments; the expansion target of compile-floored macros.
template <typename... Args>
constexpr void noop(const Args&...) noexcept {}

/// Error-construction hook used by contracts.cpp; forwards to
/// Logger::on_error with a recursion guard.
void notify_error(const char* kind, const std::string& what) noexcept;

}  // namespace detail

}  // namespace bmfusion::log
