// Log severity levels for the structured-logging subsystem.
//
// Levels are ordered so numeric comparison implements "at least as severe":
// kDebug < kInfo < kWarn < kError. The compile-time floor
// (BMFUSION_LOG_MIN_LEVEL, see log.hpp) and the runtime thresholds in
// logger.hpp both compare against these values.
#pragma once

#include <optional>
#include <string_view>

namespace bmfusion::log {

enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Lowercase canonical name ("debug", "info", "warn", "error").
[[nodiscard]] constexpr const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
  }
  return "?";
}

/// Parses a level name, case-sensitively, accepting the canonical names plus
/// "warning". Returns nullopt on anything else.
[[nodiscard]] inline std::optional<Level> parse_level(
    std::string_view name) noexcept {
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn" || name == "warning") return Level::kWarn;
  if (name == "error") return Level::kError;
  return std::nullopt;
}

}  // namespace bmfusion::log
