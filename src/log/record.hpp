// Fixed-size structured log records.
//
// A LogRecord carries a string-literal message plus up to kMaxLogFields
// typed key/value fields in inline storage — no heap pointers except
// process-lifetime literals — so records can be copied into the lock-free
// flight-recorder ring and replayed later without lifetime hazards. Field
// values are built through the overloaded f() helpers:
//
//   BMF_LOG_WARN("jitter applied", f("ridge", ridge), f("dim", n));
//
// Integral values keep their signedness, doubles are stored exactly, and
// strings come in two flavors: f(key, const char*) stores the pointer (the
// value must be a literal or otherwise outlive the process, like telemetry
// span names), while f(key, std::string_view) copies — truncating — into a
// small inline buffer, for dynamic text such as exception messages.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "log/level.hpp"

namespace bmfusion::log {

/// Maximum key/value fields per record; extra fields are dropped.
inline constexpr std::size_t kMaxLogFields = 8;

/// Inline capacity for copied (dynamic) string values, including the
/// terminating NUL. Longer values are truncated.
inline constexpr std::size_t kMaxInlineText = 48;

/// One typed key/value field. Trivially copyable by design.
struct Field {
  enum class Kind : std::uint8_t {
    kNone = 0,
    kInt,
    kUint,
    kReal,
    kLiteral,  ///< value.literal points at process-lifetime storage
    kText,     ///< truncated copy lives in `text`
  };

  const char* key = nullptr;
  Kind kind = Kind::kNone;
  union Value {
    std::int64_t i;
    std::uint64_t u;
    double real;
    const char* literal;
  } value{};
  char text[kMaxInlineText] = {};
};

/// Integral field (bools render as 0/1; signedness is preserved).
template <std::integral T>
[[nodiscard]] inline Field f(const char* key, T v) noexcept {
  Field field;
  field.key = key;
  if constexpr (std::signed_integral<T>) {
    field.kind = Field::Kind::kInt;
    field.value.i = static_cast<std::int64_t>(v);
  } else {
    field.kind = Field::Kind::kUint;
    field.value.u = static_cast<std::uint64_t>(v);
  }
  return field;
}

/// Floating-point field.
[[nodiscard]] inline Field f(const char* key, double v) noexcept {
  Field field;
  field.key = key;
  field.kind = Field::Kind::kReal;
  field.value.real = v;
  return field;
}

/// Literal-string field: stores the pointer, so `v` must outlive the process
/// (string literals, metric names). For dynamic text use the string_view
/// overload, which copies.
[[nodiscard]] inline Field f(const char* key, const char* v) noexcept {
  Field field;
  field.key = key;
  field.kind = Field::Kind::kLiteral;
  field.value.literal = v;
  return field;
}

/// Copied-string field: up to kMaxInlineText - 1 bytes of `v` are copied
/// inline (truncating silently). Safe for exception messages and other
/// transient text.
[[nodiscard]] inline Field f(const char* key, std::string_view v) noexcept {
  Field field;
  field.key = key;
  field.kind = Field::Kind::kText;
  const std::size_t n = v.size() < kMaxInlineText - 1
                            ? v.size()
                            : kMaxInlineText - 1;
  std::memcpy(field.text, v.data(), n);
  field.text[n] = '\0';
  return field;
}

/// One structured log event. `message`, `file` and field keys must be
/// string literals; everything else is stored by value, so a LogRecord can
/// sit in the flight-recorder ring indefinitely.
struct LogRecord {
  std::uint64_t time_ns = 0;  ///< monotonic timestamp (telemetry clock)
  Level level = Level::kDebug;
  const char* message = nullptr;
  const char* file = nullptr;
  int line = 0;
  std::uint32_t thread = 0;  ///< telemetry thread slot of the emitting thread
  std::uint32_t field_count = 0;
  std::array<Field, kMaxLogFields> fields{};
};

}  // namespace bmfusion::log
