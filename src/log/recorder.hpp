// Flight recorder: a lock-free ring of the most recent structured log
// records.
//
// Every log event that clears the ring threshold is copied into a fixed
// 256-slot ring with the same claim-then-publish scheme as the telemetry
// TraceBuffer: one relaxed fetch_add to claim a global index, a CAS that
// swings the slot's sequence word to an odd in-progress token, the record
// copy, then a release store of the even published sequence. The sequence
// word doubles as a per-slot claim token so two writers a full ring lap
// apart can never copy into the same slot concurrently: the one holding the
// older index drops its copy (it was about to be overwritten anyway), and
// the newer one waits out an older mid-copy writer. record() never takes a
// mutex and never allocates, so debug-level events can be captured from the
// zero-allocation Monte Carlo hot path.
//
// The payoff is the dump path: when a NumericError or DataError is raised
// (see logger.hpp), the last N events — whatever detail level the sinks were
// suppressing — are replayed next to the error context, answering "what was
// the system doing just before it failed" without debug-level sinks running
// all the time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "log/record.hpp"

namespace bmfusion::log {

class FlightRecorder {
 public:
  /// Ring capacity in records (power of two so wraparound is a mask).
  static constexpr std::size_t kCapacity = 256;

  /// The process-wide instance. Intentionally leaked, like the telemetry
  /// Registry, so log sites on pool workers parked past the end of main()
  /// can never observe a destroyed ring.
  static FlightRecorder& instance();

  /// Appends one record. Allocation-free and mutex-free; a writer only
  /// waits in the rare case that a writer one full ring lap behind it is
  /// still mid-copy in the same slot.
  void record(const LogRecord& rec) noexcept {
    const std::uint64_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[idx & (kCapacity - 1)];
    const std::uint64_t published = (idx + 1) << 1;
    std::uint64_t seen = slot.seq.load(std::memory_order_relaxed);
    while (true) {
      if (seen >= published) {
        return;  // a newer record already landed here; ours is stale
      }
      if ((seen & 1U) != 0) {
        // An older writer is mid-copy; it will publish momentarily.
        seen = slot.seq.load(std::memory_order_relaxed);
        continue;
      }
      // Acquire on success orders the previous writer's copy before ours.
      if (slot.seq.compare_exchange_weak(seen, published | 1U,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        break;
      }
    }
    slot.record = rec;
    slot.seq.store(published, std::memory_order_release);
  }

  /// Newest retained records, oldest first. Slots being overwritten by a
  /// concurrent writer are skipped; exact at quiescent points.
  [[nodiscard]] std::vector<LogRecord> snapshot() const;

  /// Total records written since construction (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded_count() const noexcept {
    return cursor_.load(std::memory_order_relaxed);
  }

  /// Empties the ring. Intended for tests at quiescent points.
  void reset() noexcept;

 private:
  struct Slot {
    LogRecord record;
    /// 0 = never written; (idx + 1) << 1 = record for cursor index idx is
    /// published; the same value | 1 = a writer for idx is mid-copy.
    std::atomic<std::uint64_t> seq{0};
  };

  FlightRecorder() : slots_(new Slot[kCapacity]) {}

  std::atomic<std::uint64_t> cursor_{0};
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace bmfusion::log
