// micro_serve: throughput/latency bench for the bmf_serve protocol over
// real loopback sockets, in JSON-lines or binary-frame mode.
//
// Starts an in-process serve::Server (epoll event loop), runs N client
// threads that each stream observe batches into their own session with
// interleaved estimate requests, and reports observe-request throughput
// plus client-side latency quantiles. --mode binary negotiates the
// length-prefixed framing (raw doubles on the wire, no JSON in the hot
// path); --pipeline W keeps W observe requests in flight per connection so
// the server's batch decode + coalesced writes are actually exercised.
// The --json flag appends one record to the BENCH_serve.json perf
// trajectory — JSON-mode records as bench "micro_serve", binary-mode
// records as "micro_serve_binary", so scripts/bench_check.py budgets and
// compares the two modes separately.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "telemetry/export.hpp"

namespace {

using bmfusion::serve::Frame;
using bmfusion::serve::LineClient;
namespace wire = bmfusion::serve::wire;

struct ClientOptions {
  std::uint16_t port = 0;
  std::size_t requests = 0;
  std::size_t batch = 8;
  std::size_t dim = 3;
  std::size_t estimate_every = 500;
  std::size_t window = 1;  ///< observe requests kept in flight
  bool binary = false;
};

struct ClientResult {
  std::vector<double> observe_us;
  std::vector<double> estimate_us;
  bool ok = true;
};

double sample_value(std::size_t round, std::size_t batch, std::size_t dim,
                    std::size_t i, std::size_t j) {
  return std::sin(static_cast<double>(round * batch * dim + i * dim + j + 1));
}

std::string observe_request_json(const std::string& session,
                                 std::size_t batch, std::size_t dim,
                                 std::size_t round) {
  std::string out =
      "{\"op\":\"observe\",\"session\":\"" + session + "\",\"samples\":[";
  for (std::size_t i = 0; i < batch; ++i) {
    if (i != 0) out += ',';
    out += '[';
    for (std::size_t j = 0; j < dim; ++j) {
      if (j != 0) out += ',';
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.12g",
                    sample_value(round, batch, dim, i, j));
      out += buffer;
    }
    out += ']';
  }
  out += "]}";
  return out;
}

std::string observe_frame_binary(const std::string& session,
                                 std::size_t batch, std::size_t dim,
                                 std::size_t round) {
  std::string payload;
  payload.reserve(2 + session.size() + 8 + batch * dim * sizeof(double));
  wire::append_string(payload, session);
  wire::append_u32(payload, static_cast<std::uint32_t>(batch));
  wire::append_u32(payload, static_cast<std::uint32_t>(dim));
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      const double value = sample_value(round, batch, dim, i, j);
      char bytes[sizeof(double)];
      std::memcpy(bytes, &value, sizeof(double));
      payload.append(bytes, sizeof(double));
    }
  }
  std::string frame;
  frame.reserve(wire::kHeaderBytes + payload.size());
  wire::append_frame(frame, wire::kObserve, 0, payload);
  return frame;
}

bool json_round_trip_ok(LineClient& client, bool binary,
                        const std::string& request) {
  std::string text;
  if (binary) {
    Frame frame;
    if (!client.request_frame(wire::kJson, request, frame)) return false;
    text = std::move(frame.payload);
  } else if (!client.request(request, text)) {
    return false;
  }
  const bmfusion::JsonValue response = bmfusion::parse_json(text);
  const bmfusion::JsonValue* ok = response.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

/// Receives one observe response in the active mode; false on failure.
bool recv_observe_ok(LineClient& client, bool binary) {
  if (binary) {
    Frame frame;
    return client.recv_frame(frame) && frame.ok();
  }
  std::string line;
  if (!client.recv_line(line)) return false;
  const bmfusion::JsonValue response = bmfusion::parse_json(line);
  const bmfusion::JsonValue* ok = response.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

void run_client(const ClientOptions& options, std::size_t index,
                ClientResult& result) {
  using Clock = std::chrono::steady_clock;
  LineClient client;
  const std::string id = "bench-" + std::to_string(index);
  if (!client.connect_to(options.port)) {
    result.ok = false;
    return;
  }
  if (options.binary && !client.negotiate_binary()) {
    result.ok = false;
    return;
  }
  if (!json_round_trip_ok(client, options.binary,
                          "{\"op\":\"open\",\"session\":\"" + id +
                              "\",\"estimator\":\"mle\"}")) {
    result.ok = false;
    return;
  }
  result.observe_us.reserve(options.requests);

  std::size_t sent = 0;
  std::size_t received = 0;
  std::deque<Clock::time_point> inflight;
  const std::size_t window = std::max<std::size_t>(1, options.window);
  while (received < options.requests) {
    while (sent < options.requests && inflight.size() < window) {
      const std::string request =
          options.binary
              ? observe_frame_binary(id, options.batch, options.dim, sent)
              : observe_request_json(id, options.batch, options.dim, sent) +
                    "\n";
      inflight.push_back(Clock::now());
      if (!client.send_raw(request)) {
        result.ok = false;
        return;
      }
      ++sent;
    }
    if (!recv_observe_ok(client, options.binary)) {
      result.ok = false;
      return;
    }
    result.observe_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() -
                                                  inflight.front())
            .count());
    inflight.pop_front();
    ++received;

    // Estimates round-trip outside the observe window so their latency is
    // not confounded with queued observes.
    if (options.estimate_every != 0 && inflight.empty() &&
        received % options.estimate_every == 0) {
      const auto est_start = Clock::now();
      if (!json_round_trip_ok(client, options.binary,
                              "{\"op\":\"estimate\",\"session\":\"" + id +
                                  "\"}")) {
        result.ok = false;
        return;
      }
      result.estimate_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - est_start)
              .count());
    }
  }
  result.ok = json_round_trip_ok(
      client, options.binary,
      "{\"op\":\"close\",\"session\":\"" + id + "\"}");
}

double quantile_us(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) *
                          (pos - static_cast<double>(lo));
}

}  // namespace

int main(int argc, char** argv) {
  bmfusion::CliParser cli(
      "Times the bmf_serve protocol over loopback TCP: observe request "
      "throughput and client-side latency quantiles, JSON or binary mode.");
  cli.add_flag("requests", "20000", "total observe requests across clients");
  cli.add_flag("batch", "8", "samples per observe request");
  cli.add_flag("sessions", "4", "concurrent client sessions");
  cli.add_flag("dim", "3", "sample dimension");
  cli.add_flag("mode", "json", "wire framing: json or binary");
  cli.add_flag("pipeline", "1",
               "observe requests kept in flight per connection");
  cli.add_flag("io-threads", "0",
               "server epoll threads (0 = one per hardware thread, max 4)");
  cli.add_flag("estimate-every", "500",
               "interleave an estimate request every N observes (0 = off)");
  cli.add_flag("json", "", "append the results to this JSON array file");
  cli.add_flag("label", "", "free-form label for the JSON record");
  cli.add_flag("git", "", "git revision for the JSON record");
  cli.add_flag("date", "", "ISO date for the JSON record");
  cli.add_flag("telemetry", "", "write a telemetry JSON snapshot here at exit");
  try {
    if (!cli.parse(argc, argv)) return 0;

    const std::size_t sessions =
        static_cast<std::size_t>(std::max(1L, cli.get_int("sessions")));
    const std::size_t total =
        static_cast<std::size_t>(std::max(1L, cli.get_int("requests")));
    const std::string mode = cli.get_string("mode");
    if (mode != "json" && mode != "binary") {
      std::fprintf(stderr, "micro_serve: --mode must be json or binary\n");
      return 2;
    }

    ClientOptions options;
    options.requests = (total + sessions - 1) / sessions;
    options.batch =
        static_cast<std::size_t>(std::max(1L, cli.get_int("batch")));
    options.dim = static_cast<std::size_t>(std::max(1L, cli.get_int("dim")));
    options.estimate_every =
        static_cast<std::size_t>(std::max(0L, cli.get_int("estimate-every")));
    options.window =
        static_cast<std::size_t>(std::max(1L, cli.get_int("pipeline")));
    options.binary = mode == "binary";

    bmfusion::serve::ServerConfig config;
    config.io_threads =
        static_cast<std::size_t>(std::max(0L, cli.get_int("io-threads")));
    config.backlog = static_cast<int>(std::max<std::size_t>(sessions, 128));
    bmfusion::serve::Server server(config);
    server.start();
    options.port = server.port();

    const auto start = std::chrono::steady_clock::now();
    std::vector<ClientResult> results(sessions);
    std::vector<std::thread> clients;
    clients.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      clients.emplace_back(run_client, std::cref(options), i,
                           std::ref(results[i]));
    }
    for (std::thread& t : clients) t.join();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    server.stop();

    std::vector<double> observe_us;
    std::vector<double> estimate_us;
    bool ok = true;
    for (ClientResult& result : results) {
      ok = ok && result.ok;
      observe_us.insert(observe_us.end(), result.observe_us.begin(),
                        result.observe_us.end());
      estimate_us.insert(estimate_us.end(), result.estimate_us.begin(),
                         result.estimate_us.end());
    }
    if (!ok) {
      std::fprintf(stderr, "micro_serve: protocol failure during bench\n");
      return 1;
    }

    const double observe_rps =
        elapsed_s > 0.0 ? static_cast<double>(observe_us.size()) / elapsed_s
                        : 0.0;
    const double observe_p50 = quantile_us(observe_us, 0.50);
    const double observe_p95 = quantile_us(observe_us, 0.95);
    const double observe_p99 = quantile_us(observe_us, 0.99);
    const double estimate_p50 = quantile_us(estimate_us, 0.50);
    const double estimate_p95 = quantile_us(estimate_us, 0.95);
    const double estimate_p99 = quantile_us(estimate_us, 0.99);

    std::printf(
        "micro_serve: mode=%s sessions=%zu requests=%zu batch=%zu dim=%zu "
        "pipeline=%zu\n",
        mode.c_str(), sessions, observe_us.size(), options.batch,
        options.dim, options.window);
    std::printf("  %-28s %12.0f req/s\n", "observe throughput", observe_rps);
    std::printf("  %-28s %12.1f us\n", "observe p50", observe_p50);
    std::printf("  %-28s %12.1f us\n", "observe p95", observe_p95);
    std::printf("  %-28s %12.1f us\n", "observe p99", observe_p99);
    std::printf("  %-28s %12.1f us\n", "estimate p50", estimate_p50);
    std::printf("  %-28s %12.1f us\n", "estimate p95", estimate_p95);
    std::printf("  %-28s %12.1f us\n", "estimate p99", estimate_p99);

    const std::string json_path = cli.get_string("json");
    if (!json_path.empty()) {
      const std::string bench_name =
          options.binary ? "micro_serve_binary" : "micro_serve";
      char measurements[768];
      std::snprintf(
          measurements, sizeof measurements,
          "\"mode\": \"%s\", \"sessions\": %zu, \"requests\": %zu, "
          "\"batch\": %zu, \"dim\": %zu, \"pipeline\": %zu, "
          "\"observe_throughput_rps\": %.1f, "
          "\"latency_us\": {\"observe_p50\": %.1f, \"observe_p95\": %.1f, "
          "\"observe_p99\": %.1f, \"estimate_p50\": %.1f, "
          "\"estimate_p95\": %.1f, \"estimate_p99\": %.1f}",
          mode.c_str(), sessions, observe_us.size(), options.batch,
          options.dim, options.window, observe_rps, observe_p50, observe_p95,
          observe_p99, estimate_p50, estimate_p95, estimate_p99);
      const std::string record =
          "{\"bench\": \"" + bench_name + "\", " +
          bmfusion::bench::run_metadata_json(cli, sessions) + ", " +
          measurements + "}";
      bmfusion::bench::append_json_record(json_path, record);
      std::printf("  record appended to %s\n", json_path.c_str());
    }
    const std::string snapshot_path = cli.get_string("telemetry");
    if (!snapshot_path.empty()) {
      bmfusion::telemetry::write_text_file(
          snapshot_path, bmfusion::telemetry::json_snapshot());
      std::printf("  telemetry snapshot written to %s\n",
                  snapshot_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_serve: %s\n", e.what());
    return 1;
  }
}
