// micro_serve: throughput/latency bench for the bmf_serve JSON-lines
// protocol over real loopback sockets.
//
// Starts an in-process serve::Server, runs N client threads that each
// stream observe batches into their own session with interleaved estimate
// requests, and reports observe-request throughput plus client-side
// latency quantiles. The --json flag appends one record to the
// BENCH_serve.json perf trajectory (scripts/bench.sh drives this;
// scripts/bench_check.py holds the budgets).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "telemetry/export.hpp"

namespace {

using bmfusion::serve::LineClient;

struct ClientResult {
  std::vector<double> observe_us;
  std::vector<double> estimate_us;
  bool ok = true;
};

bool round_trip_ok(LineClient& client, const std::string& request) {
  std::string line;
  if (!client.request(request, line)) return false;
  const bmfusion::JsonValue response = bmfusion::parse_json(line);
  const bmfusion::JsonValue* ok = response.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

std::string observe_request(const std::string& session, std::size_t batch,
                            std::size_t dim, std::size_t round) {
  std::string out =
      "{\"op\":\"observe\",\"session\":\"" + session + "\",\"samples\":[";
  for (std::size_t i = 0; i < batch; ++i) {
    if (i != 0) out += ',';
    out += '[';
    for (std::size_t j = 0; j < dim; ++j) {
      if (j != 0) out += ',';
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.12g",
                    std::sin(static_cast<double>(round * batch * dim +
                                                 i * dim + j + 1)));
      out += buffer;
    }
    out += ']';
  }
  out += "]}";
  return out;
}

void run_client(std::uint16_t port, std::size_t index, std::size_t requests,
                std::size_t batch, std::size_t dim,
                std::size_t estimate_every, ClientResult& result) {
  using Clock = std::chrono::steady_clock;
  LineClient client;
  const std::string id = "bench-" + std::to_string(index);
  if (!client.connect_to(port) ||
      !round_trip_ok(client, "{\"op\":\"open\",\"session\":\"" + id +
                                 "\",\"estimator\":\"mle\"}")) {
    result.ok = false;
    return;
  }
  result.observe_us.reserve(requests);
  for (std::size_t r = 0; r < requests; ++r) {
    const std::string request = observe_request(id, batch, dim, r);
    const auto start = Clock::now();
    if (!round_trip_ok(client, request)) {
      result.ok = false;
      return;
    }
    result.observe_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count());
    if (estimate_every != 0 && (r + 1) % estimate_every == 0) {
      const auto est_start = Clock::now();
      if (!round_trip_ok(client,
                         "{\"op\":\"estimate\",\"session\":\"" + id +
                             "\"}")) {
        result.ok = false;
        return;
      }
      result.estimate_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - est_start)
              .count());
    }
  }
  result.ok = round_trip_ok(
      client, "{\"op\":\"close\",\"session\":\"" + id + "\"}");
}

double quantile_us(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) *
                          (pos - static_cast<double>(lo));
}

}  // namespace

int main(int argc, char** argv) {
  bmfusion::CliParser cli(
      "Times the bmf_serve JSON-lines protocol over loopback TCP: observe "
      "request throughput and client-side latency quantiles.");
  cli.add_flag("requests", "20000", "total observe requests across clients");
  cli.add_flag("batch", "8", "samples per observe request");
  cli.add_flag("sessions", "4", "concurrent client sessions");
  cli.add_flag("dim", "3", "sample dimension");
  cli.add_flag("estimate-every", "500",
               "interleave an estimate request every N observes (0 = off)");
  cli.add_flag("json", "", "append the results to this JSON array file");
  cli.add_flag("label", "", "free-form label for the JSON record");
  cli.add_flag("git", "", "git revision for the JSON record");
  cli.add_flag("date", "", "ISO date for the JSON record");
  cli.add_flag("telemetry", "", "write a telemetry JSON snapshot here at exit");
  try {
    if (!cli.parse(argc, argv)) return 0;

    const std::size_t sessions =
        static_cast<std::size_t>(std::max(1L, cli.get_int("sessions")));
    const std::size_t total =
        static_cast<std::size_t>(std::max(1L, cli.get_int("requests")));
    const std::size_t per_client = (total + sessions - 1) / sessions;
    const std::size_t batch =
        static_cast<std::size_t>(std::max(1L, cli.get_int("batch")));
    const std::size_t dim =
        static_cast<std::size_t>(std::max(1L, cli.get_int("dim")));
    const std::size_t estimate_every =
        static_cast<std::size_t>(std::max(0L, cli.get_int("estimate-every")));

    bmfusion::serve::Server server;
    server.start();

    const auto start = std::chrono::steady_clock::now();
    std::vector<ClientResult> results(sessions);
    std::vector<std::thread> clients;
    clients.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      clients.emplace_back(run_client, server.port(), i, per_client, batch,
                           dim, estimate_every, std::ref(results[i]));
    }
    for (std::thread& t : clients) t.join();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    server.stop();

    std::vector<double> observe_us;
    std::vector<double> estimate_us;
    bool ok = true;
    for (ClientResult& result : results) {
      ok = ok && result.ok;
      observe_us.insert(observe_us.end(), result.observe_us.begin(),
                        result.observe_us.end());
      estimate_us.insert(estimate_us.end(), result.estimate_us.begin(),
                         result.estimate_us.end());
    }
    if (!ok) {
      std::fprintf(stderr, "micro_serve: protocol failure during bench\n");
      return 1;
    }

    const double observe_rps =
        elapsed_s > 0.0 ? static_cast<double>(observe_us.size()) / elapsed_s
                        : 0.0;
    const double observe_p50 = quantile_us(observe_us, 0.50);
    const double observe_p99 = quantile_us(observe_us, 0.99);
    const double estimate_p50 = quantile_us(estimate_us, 0.50);
    const double estimate_p99 = quantile_us(estimate_us, 0.99);

    std::printf("micro_serve: sessions=%zu requests=%zu batch=%zu dim=%zu\n",
                sessions, observe_us.size(), batch, dim);
    std::printf("  %-28s %12.0f req/s\n", "observe throughput", observe_rps);
    std::printf("  %-28s %12.1f us\n", "observe p50", observe_p50);
    std::printf("  %-28s %12.1f us\n", "observe p99", observe_p99);
    std::printf("  %-28s %12.1f us\n", "estimate p50", estimate_p50);
    std::printf("  %-28s %12.1f us\n", "estimate p99", estimate_p99);

    const std::string json_path = cli.get_string("json");
    if (!json_path.empty()) {
      char measurements[512];
      std::snprintf(
          measurements, sizeof measurements,
          "\"sessions\": %zu, \"requests\": %zu, \"batch\": %zu, "
          "\"dim\": %zu, \"observe_throughput_rps\": %.1f, "
          "\"latency_us\": {\"observe_p50\": %.1f, \"observe_p99\": %.1f, "
          "\"estimate_p50\": %.1f, \"estimate_p99\": %.1f}",
          sessions, observe_us.size(), batch, dim, observe_rps, observe_p50,
          observe_p99, estimate_p50, estimate_p99);
      const std::string record =
          "{\"bench\": \"micro_serve\", " +
          bmfusion::bench::run_metadata_json(cli, sessions) + ", " +
          measurements + "}";
      bmfusion::bench::append_json_record(json_path, record);
      std::printf("  record appended to %s\n", json_path.c_str());
    }
    const std::string snapshot_path = cli.get_string("telemetry");
    if (!snapshot_path.empty()) {
      bmfusion::telemetry::write_text_file(
          snapshot_path, bmfusion::telemetry::json_snapshot());
      std::printf("  telemetry snapshot written to %s\n",
                  snapshot_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_serve: %s\n", e.what());
    return 1;
  }
}
