// Circuit-substrate micro-bench and fast-path correctness harness.
//
// Timing mode (default) reports per-stage wall time (DC solve, AC sweep,
// one full op-amp / flash-ADC Monte-Carlo sample), post-layout op-amp MC
// throughput, and the steady-state heap-allocation count per sample
// (counted by the bmfusion_alloc_hook operator-new override). With --json
// the measurements are appended to a BENCH_*.json perf-trajectory array.
//
// Parity mode (--parity) is the correctness gate for the workspace fast
// path: it bit-compares workspace-backed sample_metrics against the
// allocating reference for both testbenches, and checks that the dataset
// and streaming-stats Monte Carlo drivers are bitwise identical across
// thread counts. It is not timing-gated, so it can run under sanitizers.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "circuit/ac.hpp"
#include "circuit/dc.hpp"
#include "circuit/flash_adc.hpp"
#include "circuit/montecarlo.hpp"
#include "circuit/opamp.hpp"
#include "common/alloc_counter.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "stats/rng.hpp"
#include "stats/sufficient_stats.hpp"
#include "telemetry/export.hpp"

namespace {

using namespace bmfusion;
using namespace bmfusion::circuit;
using linalg::Matrix;
using linalg::Vector;

bool bitwise_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof ua);
  std::memcpy(&ub, &b, sizeof ub);
  return ua == ub;
}

bool bitwise_equal(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!bitwise_equal(a[i], b[i])) return false;
  }
  return true;
}

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (!bitwise_equal(a(i, j), b(i, j))) return false;
    }
  }
  return true;
}

bool close(double a, double b, double tol) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= tol * scale;
}

bool close(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!close(a[i], b[i], tol)) return false;
  }
  return true;
}

bool close(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (!close(a(i, j), b(i, j), tol)) return false;
    }
  }
  return true;
}

/// Robust wall time per call in microseconds: one warmup batch, then the
/// median of five batch means. A single long mean is at the mercy of one
/// scheduler stall — on this project that once inflated a recorded stage
/// time by ~25% with no code change (see BENCH_circuit.json, pr7 record) —
/// while the median of independent batches discards such outliers.
template <typename F>
double time_stage_us(F&& run, std::size_t iters) {
  constexpr std::size_t kBatches = 5;
  const std::size_t per_batch =
      std::max<std::size_t>(1, iters / kBatches);
  for (std::size_t i = 0; i < per_batch; ++i) run();  // warmup batch
  double means[kBatches];
  for (double& mean : means) {
    Stopwatch sw;
    for (std::size_t i = 0; i < per_batch; ++i) run();
    mean = sw.seconds() * 1e6 / static_cast<double>(per_batch);
  }
  std::sort(means, means + kBatches);
  return means[kBatches / 2];
}

// ---------------------------------------------------------------------------
// Parity mode
// ---------------------------------------------------------------------------

int run_parity(std::uint64_t seed) {
  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? " ok " : "FAIL", what);
    if (!ok) ++failures;
  };

  const TwoStageOpAmp opamp_sch(DesignStage::kSchematic, ProcessModel::cmos45());
  const TwoStageOpAmp opamp_post(DesignStage::kPostLayout,
                                 ProcessModel::cmos45());
  const FlashAdc adc(DesignStage::kPostLayout, ProcessModel::cmos180());

  std::printf("parity: workspace fast path vs allocating reference "
              "(seed=%llu)\n",
              static_cast<unsigned long long>(seed));

  // Per-sample bitwise parity: one workspace reused across draws, so later
  // draws also exercise the buffer-reuse (not just first-allocation) path.
  const auto sample_parity = [&](const Testbench& bench, std::size_t draws,
                                 const char* what) {
    SimWorkspace ws;
    bool ok = true;
    for (std::size_t i = 0; i < draws; ++i) {
      stats::Xoshiro256pp ref_rng = sample_rng(seed, i);
      const Vector ref = bench.sample_metrics(ref_rng);
      stats::Xoshiro256pp fast_rng = sample_rng(seed, i);
      const Vector& fast = bench.sample_metrics(fast_rng, ws);
      ok = ok && bitwise_equal(ref, fast);
      // Both paths must consume exactly the same random stream.
      ok = ok && ref_rng.next_u64() == fast_rng.next_u64();
    }
    check(ok, what);
  };
  sample_parity(opamp_sch, 8, "op-amp (schematic): 8 draws bitwise identical");
  sample_parity(opamp_post, 8,
                "op-amp (post-layout): 8 draws bitwise identical");
  sample_parity(adc, 4, "flash ADC (post-layout): 4 draws bitwise identical");

  // Thread-count invariance of both Monte Carlo drivers. 70 samples spans
  // a partial trailing streaming block (70 = 64 + 6).
  MonteCarloConfig cfg;
  cfg.sample_count = 70;
  cfg.seed = seed;
  const Dataset d1 = run_monte_carlo(opamp_sch, cfg.with_threads(1));
  const Dataset d2 = run_monte_carlo(opamp_sch, cfg.with_threads(2));
  const Dataset d4 = run_monte_carlo(opamp_sch, cfg.with_threads(4));
  check(bitwise_equal(d1.samples(), d2.samples()) &&
            bitwise_equal(d1.samples(), d4.samples()),
        "op-amp dataset bitwise identical for threads=1/2/4");

  const stats::SufficientStats s1 =
      run_monte_carlo_stats(opamp_sch, cfg.with_threads(1));
  const stats::SufficientStats s2 =
      run_monte_carlo_stats(opamp_sch, cfg.with_threads(2));
  const stats::SufficientStats s4 =
      run_monte_carlo_stats(opamp_sch, cfg.with_threads(4));
  check(s1 == s2 && s1 == s4,
        "op-amp streaming stats bitwise identical for threads=1/2/4");

  // Streaming vs dataset moments agree to rounding (the block-tree
  // accumulation order differs from the row-major one, so bitwise equality
  // is not expected here).
  const stats::SufficientStats from_rows =
      stats::SufficientStats::from_samples(d1.samples());
  check(close(from_rows.mean(), s1.mean(), 1e-12) &&
            close(from_rows.scatter(), s1.scatter(), 1e-9),
        "op-amp streaming moments match the dataset path");

  MonteCarloConfig adc_cfg;
  adc_cfg.sample_count = 9;
  adc_cfg.seed = seed + 1;
  const Dataset a1 = run_monte_carlo(adc, adc_cfg.with_threads(1));
  const Dataset a3 = run_monte_carlo(adc, adc_cfg.with_threads(3));
  check(bitwise_equal(a1.samples(), a3.samples()),
        "flash-ADC dataset bitwise identical for threads=1/3");

  const stats::SufficientStats as1 =
      run_monte_carlo_stats(adc, adc_cfg.with_threads(1));
  const stats::SufficientStats as3 =
      run_monte_carlo_stats(adc, adc_cfg.with_threads(3));
  check(as1 == as3,
        "flash-ADC streaming stats bitwise identical for threads=1/3");

  std::printf("parity: %s\n", failures == 0 ? "all checks passed" : "FAILED");
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Timing mode
// ---------------------------------------------------------------------------

/// Writes the --telemetry / --trace outputs when requested; returns 1 (and
/// prints to stderr) when a requested write fails, else 0.
int flush_telemetry(const CliParser& cli) {
  const std::string snapshot_path = cli.get_string("telemetry");
  const std::string trace_path = cli.get_string("trace");
  if (snapshot_path.empty() && trace_path.empty()) return 0;
  if (!telemetry::write_outputs(snapshot_path, trace_path)) return 1;
  if (!snapshot_path.empty()) {
    std::printf("  telemetry snapshot written to %s\n", snapshot_path.c_str());
  }
  if (!trace_path.empty()) {
    std::printf("  trace written to %s\n", trace_path.c_str());
  }
  return 0;
}

/// Steady-state heap allocations per sample: warm a workspace up, then
/// count operator-new calls over `meas` further samples.
double alloc_per_sample(const Testbench& bench, std::size_t warmup,
                        std::size_t meas) {
  SimWorkspace ws;
  for (std::size_t i = 0; i < warmup; ++i) {
    stats::Xoshiro256pp rng = sample_rng(5, i);
    (void)bench.sample_metrics(rng, ws);
  }
  const std::uint64_t before = common::allocation_count();
  for (std::size_t i = warmup; i < warmup + meas; ++i) {
    stats::Xoshiro256pp rng = sample_rng(5, i);
    (void)bench.sample_metrics(rng, ws);
  }
  const std::uint64_t after = common::allocation_count();
  return static_cast<double>(after - before) / static_cast<double>(meas);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Circuit substrate micro-bench: stage wall times, Monte Carlo "
      "throughput and steady-state allocations per sample; --parity runs "
      "the bitwise fast-path checks instead.");
  cli.add_flag("samples", "2000", "Monte Carlo sample count for throughput");
  cli.add_flag("threads", "1", "Monte Carlo thread count (0 = hardware)");
  cli.add_flag("seed", "1", "Monte Carlo / parity seed");
  cli.add_flag("iters", "50", "iterations per stage timing (mean)");
  cli.add_flag("parity", "false", "run parity checks only (no timing)");
  cli.add_flag("json", "", "append the results to this JSON array file");
  cli.add_flag("label", "", "free-form label for the JSON record");
  cli.add_flag("git", "", "git revision for the JSON record");
  cli.add_flag("date", "", "ISO date for the JSON record");
  cli.add_flag("telemetry", "", "write a telemetry JSON snapshot here at exit");
  cli.add_flag("trace", "", "write a Chrome trace_event JSON here at exit");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    if (cli.get_bool("parity")) {
      const int rc = run_parity(seed);
      const int telemetry_rc = flush_telemetry(cli);
      return rc != 0 ? rc : telemetry_rc;
    }

    const auto iters = static_cast<std::size_t>(cli.get_int("iters"));
    const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
    const auto threads = static_cast<std::size_t>(cli.get_int("threads"));

    const TwoStageOpAmp opamp_sch(DesignStage::kSchematic,
                                  ProcessModel::cmos45());
    const TwoStageOpAmp opamp_post(DesignStage::kPostLayout,
                                   ProcessModel::cmos45());
    const FlashAdc adc(DesignStage::kPostLayout, ProcessModel::cmos180());

    // Stage timings (mean over `iters` calls, workspace fast path).
    const Netlist net = opamp_sch.build_netlist({});
    const DcSolver solver;
    SimWorkspace ws;
    const double dc_us =
        time_stage_us([&] { solver.solve_into(net, ws); }, iters);

    solver.solve_into(net, ws);
    ws.ac.bind(net, ws.op);
    const std::vector<double> freqs = log_frequency_grid(10.0, 10e9, 10);
    const NodeId out = net.find_node("out");
    const double ac_us = time_stage_us(
        [&] {
          ws.ac.sweep_into(freqs, out, ws.ac_system, ws.ac_lu, ws.ac_solution,
                           ws.response);
        },
        iters);

    SimWorkspace sample_ws;
    std::size_t draw = 0;
    const double opamp_us = time_stage_us(
        [&] {
          stats::Xoshiro256pp rng = sample_rng(seed, draw++);
          (void)opamp_post.sample_metrics(rng, sample_ws);
        },
        iters);
    draw = 0;
    const double opamp_ref_us = time_stage_us(
        [&] {
          stats::Xoshiro256pp rng = sample_rng(seed, draw++);
          (void)opamp_post.sample_metrics(rng);
        },
        iters);
    draw = 0;
    SimWorkspace adc_ws;
    const double adc_us = time_stage_us(
        [&] {
          stats::Xoshiro256pp rng = sample_rng(seed, draw++);
          (void)adc.sample_metrics(rng, adc_ws);
        },
        std::max<std::size_t>(1, iters / 2));

    // Steady-state allocations per sample (op-amp must be exactly zero).
    const double opamp_alloc = alloc_per_sample(opamp_post, 4, 16);
    const double adc_alloc = alloc_per_sample(adc, 2, 8);

    // Monte Carlo throughput, post-layout op-amp.
    MonteCarloConfig cfg;
    cfg.sample_count = samples;
    cfg.seed = seed;
    cfg.threads = threads;
    Stopwatch sw;
    const Dataset ds = run_monte_carlo(opamp_post, cfg);
    const double mc_seconds = sw.seconds();
    const double sps = static_cast<double>(ds.sample_count()) / mc_seconds;

    // Streaming-stats driver throughput on the same bench/config: this is
    // the path the estimator uses, and the one the parallel reduction was
    // built for, so its scaling is tracked separately from the dataset path.
    Stopwatch stats_sw;
    const stats::SufficientStats mc_stats = run_monte_carlo_stats(opamp_post, cfg);
    const double mc_stats_seconds = stats_sw.seconds();
    const double stats_sps =
        static_cast<double>(mc_stats.count()) / mc_stats_seconds;

    std::printf("micro_circuit (threads=%zu, iters=%zu)\n", threads, iters);
    std::printf("  %-36s %10.3f us\n", "DC solve (schematic op-amp)", dc_us);
    std::printf("  %-36s %10.3f us\n", "AC sweep (91 points)", ac_us);
    std::printf("  %-36s %10.3f us\n", "op-amp sample (workspace)", opamp_us);
    std::printf("  %-36s %10.3f us\n", "op-amp sample (reference)",
                opamp_ref_us);
    std::printf("  %-36s %10.3f us\n", "flash-ADC sample (workspace)", adc_us);
    std::printf("  %-36s %10.2f\n", "op-amp allocs/sample (steady)",
                opamp_alloc);
    std::printf("  %-36s %10.2f\n", "flash-ADC allocs/sample (steady)",
                adc_alloc);
    std::printf("  MC op-amp post-layout: %zu samples in %.4f s = %.1f "
                "samples/s\n",
                ds.sample_count(), mc_seconds, sps);
    std::printf("  MC op-amp post-layout (streaming stats): %zu samples in "
                "%.4f s = %.1f samples/s\n",
                mc_stats.count(), mc_stats_seconds, stats_sps);

    const std::string json_path = cli.get_string("json");
    if (!json_path.empty()) {
      char measurements[832];
      std::snprintf(
          measurements, sizeof measurements,
          "\"stages\": {\"dc_solve_us\": %.3f, \"ac_sweep_us\": %.3f, "
          "\"opamp_sample_us\": %.3f, \"opamp_sample_ref_us\": %.3f, "
          "\"adc_sample_us\": %.3f}, \"mc_opamp_postlayout\": {\"samples\": "
          "%zu, \"seconds\": %.4f, \"throughput_sps\": %.1f}, "
          "\"mc_stats_opamp_postlayout\": {\"samples\": %zu, \"seconds\": "
          "%.4f, \"throughput_sps\": %.1f}, "
          "\"alloc_per_sample\": {\"opamp\": %.2f, \"adc\": %.2f}",
          dc_us, ac_us, opamp_us, opamp_ref_us, adc_us, ds.sample_count(),
          mc_seconds, sps, mc_stats.count(), mc_stats_seconds, stats_sps,
          opamp_alloc, adc_alloc);
      const std::string record = "{\"bench\": \"micro_circuit\", " +
                                 bench::run_metadata_json(cli, threads) +
                                 ", " + measurements + "}";
      bench::append_json_record(json_path, record);
      std::printf("  record appended to %s\n", json_path.c_str());
    }

    const int telemetry_rc = flush_telemetry(cli);
    if (opamp_alloc != 0.0 || adc_alloc != 0.0) {
      std::fprintf(stderr,
                   "micro_circuit: hot path allocated in steady state "
                   "(op-amp %.2f, flash-ADC %.2f allocs/sample, expected "
                   "0 for both)\n",
                   opamp_alloc, adc_alloc);
      return 1;
    }
    return telemetry_rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_circuit: %s\n", e.what());
    return 1;
  }
}
