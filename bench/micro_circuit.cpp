// Micro-benchmarks for the circuit substrate: one DC operating point, one
// AC sweep, one full op-amp Monte-Carlo sample, one flash-ADC sample.
#include <benchmark/benchmark.h>

#include "circuit/ac.hpp"
#include "circuit/dc.hpp"
#include "circuit/flash_adc.hpp"
#include "circuit/opamp.hpp"
#include "stats/rng.hpp"

namespace {

using namespace bmfusion;
using namespace bmfusion::circuit;

void BM_OpAmpDcSolve(benchmark::State& state) {
  const TwoStageOpAmp amp(DesignStage::kSchematic, ProcessModel::cmos45());
  const Netlist net = amp.build_netlist({});
  const DcSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(net));
  }
}
BENCHMARK(BM_OpAmpDcSolve);

void BM_OpAmpAcSweep(benchmark::State& state) {
  const TwoStageOpAmp amp(DesignStage::kSchematic, ProcessModel::cmos45());
  const Netlist net = amp.build_netlist({});
  const OperatingPoint op = DcSolver().solve(net);
  const AcAnalysis ac(net, op);
  const std::vector<double> freqs = log_frequency_grid(10.0, 10e9, 10);
  const NodeId out = net.find_node("out");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ac.sweep(freqs, out));
  }
}
BENCHMARK(BM_OpAmpAcSweep);

void BM_OpAmpFullSample(benchmark::State& state) {
  const TwoStageOpAmp amp(DesignStage::kPostLayout, ProcessModel::cmos45());
  stats::Xoshiro256pp rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(amp.sample_metrics(rng));
  }
}
BENCHMARK(BM_OpAmpFullSample);

void BM_FlashAdcFullSample(benchmark::State& state) {
  const FlashAdc adc(DesignStage::kPostLayout, ProcessModel::cmos180());
  stats::Xoshiro256pp rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc.sample_metrics(rng));
  }
}
BENCHMARK(BM_FlashAdcFullSample);

void BM_MosfetEval(benchmark::State& state) {
  MosfetModel model;
  const MosfetGeometry geom{2e-6, 0.2e-6};
  double vg = 0.6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_mosfet(model, geom, {}, vg, 1.0, 0.0));
    vg = vg == 0.6 ? 0.61 : 0.6;
  }
}
BENCHMARK(BM_MosfetEval);

}  // namespace

BENCHMARK_MAIN();
