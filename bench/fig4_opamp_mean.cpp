// Figure 4(a) reproduction: two-stage op-amp (45 nm) — estimation error of
// the late-stage MEAN VECTOR (eq. 37) vs. number of late-stage samples,
// MLE vs. the proposed BMF, averaged over repeated runs.
//
// Expected shape (paper Section 5.1): BMF gives a modest (~3x at the very
// smallest n) cost reduction on the mean, because the post-layout mean is
// only partially predictable from the schematic (cross validation picks a
// *small* kappa0).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bmfusion;
  CliParser cli(
      "fig4_opamp_mean: paper Figure 4(a) — op-amp mean-vector error vs "
      "late-stage sample count");
  bench::add_common_flags(cli, 5000);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::StageData data = bench::load_opamp_data(
        cli.get_string("data-dir"),
        static_cast<std::size_t>(cli.get_int("samples")));
    const core::MomentExperiment experiment(data.early, data.early_nominal,
                                            data.late, data.late_nominal);
    const core::ExperimentConfig cfg = bench::experiment_config_from_cli(
        cli, {8, 16, 32, 64, 128, 256, 512});
    const core::ExperimentResult result = experiment.run(cfg);
    bench::print_error_figure(
        "Figure 4(a): op-amp late-stage mean-vector error (eq. 37)", result,
        /*use_cov=*/false, cli.get_string("csv"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig4_opamp_mean: %s\n", e.what());
    return 1;
  }
  return 0;
}
