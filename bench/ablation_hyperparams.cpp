// Ablation of the hyper-parameters themselves: sweep fixed (kappa0, nu0)
// pairs — including the Section 3.3 extremes — on the op-amp workload and
// compare against the cross-validated choice.
//
//   kappa0 -> 0, nu0 -> d   : MAP collapses to MLE (paper eqs. 34/36)
//   kappa0, nu0 -> infinity : MAP collapses to the prior (eqs. 33/35)
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/mle.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace {

using namespace bmfusion;
using linalg::Matrix;

Matrix gather(const Matrix& samples, stats::Xoshiro256pp& rng,
              std::size_t n) {
  Matrix out(n, samples.cols());
  std::vector<std::size_t> pool(samples.rows());
  for (std::size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(pool.size() - i));
    std::swap(pool[i], pool[j]);
    out.set_row(i, samples.row(pool[i]));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmfusion;
  CliParser cli(
      "ablation_hyperparams: error at fixed (kappa0, nu0) pairs incl. the "
      "Section 3.3 extremes, vs the cross-validated choice (op-amp, n=32)");
  bench::add_common_flags(cli, 5000);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::StageData data = bench::load_opamp_data(
        cli.get_string("data-dir"),
        static_cast<std::size_t>(cli.get_int("samples")));
    const core::MomentExperiment experiment(data.early, data.early_nominal,
                                            data.late, data.late_nominal);
    const core::GaussianMoments& early = experiment.early_scaled();
    const core::GaussianMoments& exact = experiment.exact_scaled();
    const Matrix& late = experiment.late_scaled();

    std::size_t reps = static_cast<std::size_t>(cli.get_int("runs"));
    if (cli.get_bool("quick")) reps = std::max<std::size_t>(3, reps / 10);
    constexpr std::size_t kN = 32;
    const double d = 5.0;

    struct Fixed {
      const char* label;
      double kappa0;
      double nu0;
    };
    const Fixed fixed[] = {
        {"mle_limit (k->0, nu->d)", 1e-9, d + 1e-9},
        {"weak prior", 1.0, d + 5.0},
        {"balanced", 10.0, 50.0},
        {"strong covariance prior", 10.0, 600.0},
        {"strong full prior", 600.0, 600.0},
        {"prior_limit (k,nu->inf)", 1e9, 1e9},
    };

    std::printf("\nAblation: fixed hyper-parameters (op-amp, n=32)\n");
    ConsoleTable table({"setting", "kappa0", "nu0", "mean_err", "cov_err"});
    for (const Fixed& f : fixed) {
      double mean_err = 0.0, cov_err = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        stats::Xoshiro256pp rng(7000 + r);
        const Matrix subset = gather(late, rng, kN);
        const core::GaussianMoments map =
            core::BmfEstimator::fuse_at(early, subset, f.kappa0, f.nu0);
        mean_err += core::mean_error(map.mean, exact.mean);
        cov_err += core::covariance_error(map.covariance, exact.covariance);
      }
      const double inv = 1.0 / static_cast<double>(reps);
      table.add_row({f.label, format_double(f.kappa0, 3),
                     format_double(f.nu0, 3),
                     format_double(mean_err * inv, 5),
                     format_double(cov_err * inv, 5)});
    }
    // Reference rows: plain MLE and the cross-validated BMF, both through
    // the unified MomentEstimator interface.
    {
      const core::MleEstimator mle_estimator;
      const core::BmfEstimator bmf_estimator(
          core::EarlyStageKnowledge{early, early.mean},
          core::BmfConfig{}.with_shift_scale(false));
      double mle_mean = 0.0, mle_cov = 0.0, cv_mean = 0.0, cv_cov = 0.0;
      std::vector<double> kappas, nus;
      for (std::size_t r = 0; r < reps; ++r) {
        stats::Xoshiro256pp rng(7000 + r);
        const Matrix subset = gather(late, rng, kN);
        const core::EstimateResult mle = mle_estimator.estimate(subset);
        mle_mean += core::mean_error(mle.moments.mean, exact.mean);
        mle_cov += core::covariance_error(mle.moments.covariance,
                                          exact.covariance);
        const core::EstimateResult bmf = bmf_estimator.estimate(subset);
        cv_mean += core::mean_error(bmf.scaled_moments.mean, exact.mean);
        cv_cov += core::covariance_error(bmf.scaled_moments.covariance,
                                         exact.covariance);
        kappas.push_back(bmf.kappa0);
        nus.push_back(bmf.nu0);
      }
      const double inv = 1.0 / static_cast<double>(reps);
      table.add_row({"MLE (reference)", "-", "-",
                     format_double(mle_mean * inv, 5),
                     format_double(mle_cov * inv, 5)});
      table.add_row({"BMF cross-validated",
                     format_double(stats::median(kappas), 4),
                     format_double(stats::median(nus), 4),
                     format_double(cv_mean * inv, 5),
                     format_double(cv_cov * inv, 5)});
    }
    table.print(std::cout);

    // Shape of one CV score surface, read through the grid() accessor: how
    // far the extremes fall below the selected point.
    {
      stats::Xoshiro256pp rng(7000);
      const core::CrossValidationResult sel =
          core::select_hyperparameters(early, gather(late, rng, kN));
      const core::GridScore& first = sel.grid().front();
      const core::GridScore& last = sel.grid().back();
      std::printf(
          "# CV surface: best %.4f at (k=%.3g, nu=%.3g); corners "
          "(k=%.3g, nu=%.3g) -> %.4f, (k=%.3g, nu=%.3g) -> %.4f\n",
          sel.score, sel.kappa0, sel.nu0, first.kappa0, first.nu0,
          first.score, last.kappa0, last.nu0, last.score);
    }
    std::printf(
        "# the mle_limit row must match the MLE reference; the "
        "cross-validated row should sit near the best fixed setting.\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_hyperparams: %s\n", e.what());
    return 1;
  }
  return 0;
}
