// Reproduces the quantitative claims quoted in the text of Section 5:
//   * op-amp: ">16x cost reduction over MLE in covariance matrix
//     estimation", "nearly 3x" on the mean at very small n, optimized
//     kappa0 ~ 4.67 and nu0 ~ 557.3 at n = 32 (Section 5.1);
//   * ADC: ">10x" on both moments, kappa0 ~ 521.9 and nu0 ~ 558.8 at
//     n = 32 (Section 5.2).
// Prints one row per (circuit, moment) with the measured cost-reduction
// factor at small n and the median hyper-parameters selected at n = 32.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace {

using namespace bmfusion;

struct ClaimRow {
  std::string circuit;
  std::string moment;
  double factor_small_n;
  double paper_factor;
  double kappa32;
  double nu32;
};

ClaimRow make_row(const std::string& circuit, const std::string& moment,
                  const core::ExperimentResult& result, bool use_cov,
                  std::size_t small_n, double paper_factor) {
  ClaimRow row;
  row.circuit = circuit;
  row.moment = moment;
  row.factor_small_n =
      core::cost_reduction_factor(result.rows, small_n, use_cov);
  row.paper_factor = paper_factor;
  row.kappa32 = 0.0;
  row.nu32 = 0.0;
  for (const core::ExperimentRow& r : result.rows) {
    if (r.n == 32) {
      row.kappa32 = r.median_kappa0;
      row.nu32 = r.median_nu0;
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmfusion;
  CliParser cli(
      "cost_reduction_table: Section 5 text claims — BMF-vs-MLE cost "
      "reduction factors and selected hyper-parameters");
  bench::add_common_flags(cli, 5000);
  cli.add_flag("adc-samples", "1000", "ADC Monte-Carlo population size");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string dir = cli.get_string("data-dir");

    const bench::StageData opamp = bench::load_opamp_data(
        dir, static_cast<std::size_t>(cli.get_int("samples")));
    const core::MomentExperiment opamp_exp(opamp.early, opamp.early_nominal,
                                           opamp.late, opamp.late_nominal);
    const core::ExperimentResult opamp_res = opamp_exp.run(
        bench::experiment_config_from_cli(cli,
                                          {8, 16, 32, 64, 128, 256, 512}));

    const bench::StageData adc = bench::load_adc_data(
        dir, static_cast<std::size_t>(cli.get_int("adc-samples")));
    const core::MomentExperiment adc_exp(adc.early, adc.early_nominal,
                                         adc.late, adc.late_nominal);
    const core::ExperimentResult adc_res = adc_exp.run(
        bench::experiment_config_from_cli(cli, {8, 16, 32, 64, 128, 256}));

    const ClaimRow rows[] = {
        make_row("opamp", "mean", opamp_res, false, 8, 3.0),
        make_row("opamp", "covariance", opamp_res, true, 16, 16.0),
        make_row("adc", "mean", adc_res, false, 8, 10.0),
        make_row("adc", "covariance", adc_res, true, 8, 10.0),
    };

    std::printf("\nSection 5 claims: cost reduction of BMF over MLE\n");
    ConsoleTable table({"circuit", "moment", "measured_x", "paper_x",
                        "kappa0@n=32", "nu0@n=32"});
    for (const ClaimRow& r : rows) {
      table.add_row({r.circuit, r.moment, format_double(r.factor_small_n, 3),
                     format_double(r.paper_factor, 3),
                     format_double(r.kappa32, 4), format_double(r.nu32, 4)});
    }
    table.print(std::cout);
    std::printf(
        "# paper reference points: opamp kappa0=4.67 nu0=557.3 @n=32; "
        "adc kappa0=521.9 nu0=558.8 @n=32\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cost_reduction_table: %s\n", e.what());
    return 1;
  }
  return 0;
}
