// Old-vs-new cross-validation engine micro-bench.
//
// Embeds a copy of the original CV engine — the one that re-materialized
// train/test matrices per fold and ran the full posterior -> MAP -> mvn
// scoring pipeline at every grid point — and races it against the
// sufficient-statistic engine in core/cross_validation at the paper's
// default setting (12x12 grid, Q = 4, d = 4, n <= 100). Also reports the
// worst per-grid-point score deviation so the speedup is backed by a parity
// check.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/contracts.hpp"
#include "core/cross_validation.hpp"
#include "core/normal_wishart.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "stats/mvn.hpp"
#include "stats/rng.hpp"
#include "telemetry/export.hpp"

namespace {

using bmfusion::core::CrossValidationConfig;
using bmfusion::core::CrossValidationResult;
using bmfusion::core::GaussianMoments;
using bmfusion::core::GridScore;
using bmfusion::core::NormalWishart;
using bmfusion::core::log_spaced;
using bmfusion::linalg::Matrix;
using bmfusion::linalg::Vector;

/// The pre-sufficient-statistic engine, kept verbatim as the reference.
Matrix fold_rows(const Matrix& samples, std::size_t folds, std::size_t fold,
                 bool training) {
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    const bool in_test = (i % folds) == fold;
    if (in_test != training) keep.push_back(i);
  }
  Matrix out(keep.size(), samples.cols());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    out.set_row(i, samples.row(keep[i]));
  }
  return out;
}

std::vector<GridScore> reference_grid(const GaussianMoments& early_scaled,
                                      const Matrix& late_scaled,
                                      const CrossValidationConfig& config) {
  const std::size_t folds = std::min(config.folds, late_scaled.rows());
  const double d = static_cast<double>(early_scaled.dimension());
  const std::vector<double> kappas =
      log_spaced(config.kappa_min, config.kappa_max, config.kappa_points);
  const std::vector<double> nu_offsets = log_spaced(
      config.nu_offset_min, config.nu_offset_max, config.nu_points);

  std::vector<Matrix> train_sets;
  std::vector<Matrix> test_sets;
  for (std::size_t q = 0; q < folds; ++q) {
    train_sets.push_back(fold_rows(late_scaled, folds, q, /*training=*/true));
    test_sets.push_back(fold_rows(late_scaled, folds, q, /*training=*/false));
  }

  std::vector<GridScore> table;
  table.reserve(kappas.size() * nu_offsets.size());
  for (const double kappa0 : kappas) {
    for (const double nu_offset : nu_offsets) {
      const double nu0 = d + nu_offset;
      const NormalWishart prior =
          NormalWishart::from_early_stage(early_scaled, kappa0, nu0);
      double total_loglik = 0.0;
      std::size_t total_count = 0;
      bool valid = true;
      for (std::size_t q = 0; q < folds && valid; ++q) {
        try {
          const GaussianMoments map =
              prior.posterior(train_sets[q]).map_estimate();
          const bmfusion::stats::MultivariateNormal mvn(map.mean,
                                                        map.covariance);
          total_loglik += mvn.log_likelihood(test_sets[q]);
          total_count += test_sets[q].rows();
        } catch (const bmfusion::NumericError&) {
          valid = false;
        }
      }
      GridScore gs;
      gs.kappa0 = kappa0;
      gs.nu0 = nu0;
      gs.score = (valid && total_count > 0)
                     ? total_loglik / static_cast<double>(total_count)
                     : -std::numeric_limits<double>::infinity();
      table.push_back(gs);
    }
  }
  return table;
}

/// Deterministic synthetic problem in scaled space: correlated d-dim
/// Gaussian late samples plus a slightly mis-anchored early-stage prior.
struct Problem {
  GaussianMoments early;
  Matrix late;
};

Problem make_problem(std::size_t d, std::size_t n, std::uint64_t seed) {
  GaussianMoments truth;
  truth.mean = Vector(d);
  truth.covariance = Matrix(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    truth.mean[i] = 0.05 * static_cast<double>(i);
    for (std::size_t j = 0; j < d; ++j) {
      truth.covariance(i, j) =
          std::pow(0.6, static_cast<double>(i > j ? i - j : j - i));
    }
  }

  Problem problem;
  problem.early = truth;
  for (std::size_t i = 0; i < d; ++i) {
    problem.early.mean[i] += 0.1;
    problem.early.covariance(i, i) *= 1.15;
  }

  bmfusion::stats::Xoshiro256pp rng(seed);
  const bmfusion::stats::MultivariateNormal mvn(truth.mean, truth.covariance);
  problem.late = Matrix(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    problem.late.set_row(i, mvn.sample(rng));
  }
  return problem;
}

template <typename F>
double time_best_ms(F&& run, std::size_t iterations) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t it = 0; it < iterations; ++it) {
    const auto start = std::chrono::steady_clock::now();
    run();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best,
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bmfusion::CliParser cli(
      "Times the sufficient-statistic CV engine against the original "
      "materialize-per-fold implementation and checks grid parity.");
  cli.add_flag("d", "4", "metric dimension");
  cli.add_flag("n", "100", "late-stage sample count");
  cli.add_flag("folds", "4", "cross-validation folds (Q)");
  cli.add_flag("grid", "12", "grid points per hyper-parameter axis");
  cli.add_flag("iters", "5", "timing iterations (best-of)");
  cli.add_flag("seed", "2015", "rng seed for the synthetic problem");
  cli.add_flag("json", "", "append the results to this JSON array file");
  cli.add_flag("label", "", "free-form label for the JSON record");
  cli.add_flag("git", "", "git revision for the JSON record");
  cli.add_flag("date", "", "ISO date for the JSON record");
  cli.add_flag("telemetry", "", "write a telemetry JSON snapshot here at exit");
  try {
    if (!cli.parse(argc, argv)) return 0;

    const auto d = static_cast<std::size_t>(cli.get_int("d"));
    const auto n = static_cast<std::size_t>(cli.get_int("n"));
    const auto iters = static_cast<std::size_t>(cli.get_int("iters"));
    const auto grid_points = static_cast<std::size_t>(cli.get_int("grid"));
    CrossValidationConfig config =
        CrossValidationConfig{}
            .with_folds(static_cast<std::size_t>(cli.get_int("folds")))
            .with_grid(grid_points, grid_points);

    const Problem problem = make_problem(
        d, n, static_cast<std::uint64_t>(cli.get_int("seed")));

    // Parity first: every grid point must agree to 1e-9.
    const std::vector<GridScore> ref =
        reference_grid(problem.early, problem.late, config);
    const CrossValidationResult fast = bmfusion::core::select_hyperparameters(
        problem.early, problem.late, config.with_threads(1));
    double max_dev = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      max_dev = std::max(max_dev,
                         std::abs(ref[i].score - fast.grid()[i].score));
    }

    const double old_ms = time_best_ms(
        [&] { (void)reference_grid(problem.early, problem.late, config); },
        iters);
    const double new_1t_ms = time_best_ms(
        [&] {
          (void)bmfusion::core::select_hyperparameters(
              problem.early, problem.late, config.with_threads(1));
        },
        iters);
    const double new_mt_ms = time_best_ms(
        [&] {
          (void)bmfusion::core::select_hyperparameters(
              problem.early, problem.late, config.with_threads(0));
        },
        iters);

    std::printf("micro_cv: d=%zu n=%zu folds=%zu grid=%zux%zu (best of %zu)\n",
                d, n, config.folds, config.kappa_points, config.nu_points,
                iters);
    std::printf("  %-34s %10.3f ms\n", "original engine (materialized folds)",
                old_ms);
    std::printf("  %-34s %10.3f ms\n", "sufficient-stat engine, 1 thread",
                new_1t_ms);
    std::printf("  %-34s %10.3f ms\n", "sufficient-stat engine, pool",
                new_mt_ms);
    std::printf("  speedup (1 thread)   %.2fx\n", old_ms / new_1t_ms);
    std::printf("  speedup (pool)       %.2fx\n", old_ms / new_mt_ms);
    std::printf("  max |score dev|      %.3e  (%s)\n", max_dev,
                max_dev <= 1e-9 ? "parity OK" : "PARITY FAIL");
    std::printf("  selected             kappa0=%.4g nu0=%.4g score=%.6f\n",
                fast.kappa0, fast.nu0, fast.score);

    const std::string json_path = cli.get_string("json");
    if (!json_path.empty()) {
      char measurements[384];
      std::snprintf(
          measurements, sizeof measurements,
          "\"d\": %zu, \"n\": %zu, \"folds\": %zu, \"grid\": %zu, "
          "\"old_ms\": %.3f, \"new_1t_ms\": %.3f, \"new_mt_ms\": %.3f, "
          "\"max_score_dev\": %.3e",
          d, n, config.folds, grid_points, old_ms, new_1t_ms, new_mt_ms,
          max_dev);
      const std::string record =
          "{\"bench\": \"micro_cv\", " +
          bmfusion::bench::run_metadata_json(cli, /*threads=*/0) + ", " +
          measurements + "}";
      bmfusion::bench::append_json_record(json_path, record);
      std::printf("  record appended to %s\n", json_path.c_str());
    }
    const std::string snapshot_path = cli.get_string("telemetry");
    if (!snapshot_path.empty()) {
      if (!bmfusion::telemetry::write_outputs(snapshot_path, "")) return 1;
      std::printf("  telemetry snapshot written to %s\n",
                  snapshot_path.c_str());
    }
    return max_dev <= 1e-9 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_cv: %s\n", e.what());
    return 1;
  }
}
