// High-sigma yield verification on the fused op-amp moments: plain Monte
// Carlo vs mean-shift importance sampling.
//
// The introduction's motivation is yield estimation under tight sample
// budgets; once the moments are fused, verifying a *tight* spec (4-5 sigma)
// by plain MC needs millions of draws. This bench shows the importance
// sampler reaching percent-level relative error on the failure probability
// with 10^4 draws where plain MC at the same budget sees zero or a handful
// of failures.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/estimator.hpp"
#include "core/yield.hpp"
#include "stats/rng.hpp"
#include "stats/special.hpp"

int main(int argc, char** argv) {
  using namespace bmfusion;
  using linalg::Vector;
  CliParser cli(
      "ablation_high_sigma: plain MC vs mean-shift importance sampling for "
      "tight-spec yield on the op-amp moments");
  bench::add_common_flags(cli, 5000);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::StageData data = bench::load_opamp_data(
        cli.get_string("data-dir"),
        static_cast<std::size_t>(cli.get_int("samples")));
    const core::GaussianMoments moments =
        core::MleEstimator().estimate(data.late.samples()).moments;

    const double inf = std::numeric_limits<double>::infinity();
    std::printf("\nHigh-sigma yield: gain >= mean - k*sigma (op-amp)\n");
    ConsoleTable table({"k_sigma", "exact_pfail", "mc_pfail(1e5)",
                        "is_pfail(1e4)", "is_rel_stderr"});
    for (const double k : {2.0, 3.0, 4.0, 5.0}) {
      const double sd = std::sqrt(moments.covariance(0, 0));
      const double bound = moments.mean[0] - k * sd;
      core::SpecBox box{Vector{bound, -inf, -inf, -inf, -inf},
                        Vector{inf, inf, inf, inf, inf}};
      // Exact for a single-face Gaussian spec: Phi(-k).
      const double exact = stats::standard_normal_cdf(-k);

      stats::Xoshiro256pp rng(99);
      const core::YieldEstimate mc =
          core::estimate_yield(moments, box, rng, 100000);
      const core::ImportanceSamplingResult is =
          core::estimate_yield_importance(moments, box, rng, 10000);
      table.add_row(
          {format_double(k, 3), format_double(exact, 4),
           format_double(1.0 - mc.yield, 4),
           format_double(is.failure_probability, 4),
           format_double(is.standard_error /
                             std::max(1e-300, is.failure_probability),
                         3)});
    }
    table.print(std::cout);
    std::printf(
        "# at 5 sigma (pfail ~ 2.9e-7) plain MC with 1e5 draws expects "
        "0.03 failures; IS with 1e4 draws resolves it to a few percent.\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_high_sigma: %s\n", e.what());
    return 1;
  }
  return 0;
}
