// Micro-benchmarks for the BMF estimation core: one MAP fusion, the
// held-out likelihood score, a full 2-D cross-validated estimate, and the
// posterior-predictive evaluation.
#include <benchmark/benchmark.h>

#include "core/bmf_estimator.hpp"
#include "core/cross_validation.hpp"
#include "core/estimator.hpp"
#include "core/normal_wishart.hpp"
#include "stats/mvn.hpp"
#include "stats/rng.hpp"

namespace {

using namespace bmfusion;
using linalg::Matrix;
using linalg::Vector;

core::GaussianMoments make_moments(std::size_t d) {
  stats::Xoshiro256pp rng(9);
  Matrix b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) b(i, j) = rng.next_uniform(-1, 1);
  }
  core::GaussianMoments m;
  m.mean = Vector(d, 0.1);
  m.covariance = b * b.transposed();
  for (std::size_t i = 0; i < d; ++i) m.covariance(i, i) += 1.0;
  m.covariance.symmetrize();
  return m;
}

Matrix make_samples(const core::GaussianMoments& m, std::size_t n) {
  stats::Xoshiro256pp rng(10);
  return stats::MultivariateNormal(m.mean, m.covariance).sample_matrix(rng,
                                                                       n);
}

void BM_MapFusion(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const core::GaussianMoments early = make_moments(d);
  const Matrix samples = make_samples(early, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::BmfEstimator::fuse_at(early, samples, 10.0, 50.0));
  }
}
BENCHMARK(BM_MapFusion)->Arg(5)->Arg(10)->Arg(20);

void BM_LogLikelihood(benchmark::State& state) {
  const core::GaussianMoments m = make_moments(5);
  const Matrix samples = make_samples(m, static_cast<std::size_t>(
                                             state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::log_likelihood(m, samples));
  }
}
BENCHMARK(BM_LogLikelihood)->Arg(8)->Arg(64)->Arg(512);

void BM_CrossValidatedEstimate(benchmark::State& state) {
  const core::GaussianMoments early = make_moments(5);
  const Matrix samples = make_samples(early, static_cast<std::size_t>(
                                                 state.range(0)));
  const core::BmfEstimator estimator(
      core::EarlyStageKnowledge{early, early.mean},
      core::BmfConfig{}.with_shift_scale(false));
  const core::MomentEstimator& iface = estimator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iface.estimate(samples));
  }
}
BENCHMARK(BM_CrossValidatedEstimate)->Arg(8)->Arg(32)->Arg(128);

void BM_MleEstimate(benchmark::State& state) {
  const core::GaussianMoments m = make_moments(5);
  const Matrix samples = make_samples(m, static_cast<std::size_t>(
                                             state.range(0)));
  const core::MleEstimator estimator;
  const core::MomentEstimator& iface = estimator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iface.estimate(samples));
  }
}
BENCHMARK(BM_MleEstimate)->Arg(8)->Arg(128)->Arg(1024);

void BM_PosteriorPredictive(benchmark::State& state) {
  const core::GaussianMoments early = make_moments(5);
  const core::NormalWishart prior =
      core::NormalWishart::from_early_stage(early, 5.0, 20.0);
  const Vector x(5, 0.2);
  const core::NormalWishart::StudentT t = prior.posterior_predictive();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::NormalWishart::student_t_log_pdf(t, x));
  }
}
BENCHMARK(BM_PosteriorPredictive);

}  // namespace

BENCHMARK_MAIN();
