// Ablation of prior quality: where does BMF stop beating MLE?
//
// Two degradation axes, both evaluated on the op-amp workload at n = 16:
//   1. the early-stage population size (noisy prior moments), and
//   2. an injected distortion of the early-stage mean (in units of the
//      scaled sigma) — emulating a schematic that predicts the layout
//      poorly.
// The expected behaviour is graceful: as the prior degrades, cross
// validation drives kappa0/nu0 down and BMF converges to MLE instead of
// being dragged toward the bad prior.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/estimator.hpp"

int main(int argc, char** argv) {
  using namespace bmfusion;
  using linalg::Vector;
  CliParser cli(
      "ablation_prior_quality: BMF-vs-MLE as the early-stage prior degrades "
      "(op-amp workload, n = 16)");
  bench::add_common_flags(cli, 5000);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::StageData data = bench::load_opamp_data(
        cli.get_string("data-dir"),
        static_cast<std::size_t>(cli.get_int("samples")));

    core::ExperimentConfig cfg = bench::experiment_config_from_cli(cli, {16});
    cfg.repetitions = std::max<std::size_t>(3, cfg.repetitions / 2);

    // Axis 1: early-population size.
    std::printf("\nAblation: early-stage population size (op-amp, n=16)\n");
    ConsoleTable size_table({"early_n", "mle_cov_err", "bmf_cov_err",
                             "bmf_mean_err", "kappa0", "nu0"});
    for (const std::size_t early_n : {50u, 200u, 1000u, 5000u}) {
      const circuit::Dataset early_subset = data.early.head(
          std::min<std::size_t>(early_n, data.early.sample_count()));
      const core::MomentExperiment experiment(
          early_subset, data.early_nominal, data.late, data.late_nominal);
      const core::ExperimentResult res = experiment.run(cfg);
      size_table.add_numeric_row(
          {static_cast<double>(early_subset.sample_count()),
           res.rows[0].mle_cov_error, res.rows[0].bmf_cov_error,
           res.rows[0].bmf_mean_error, res.rows[0].median_kappa0,
           res.rows[0].median_nu0});
    }
    size_table.print(std::cout);

    // Axis 2: injected early-mean distortion (in scaled sigma units). The
    // distortion is applied to the raw early samples along every metric
    // using the early-stage standard deviations.
    std::printf(
        "\nAblation: injected early-stage mean distortion (op-amp, n=16)\n");
    ConsoleTable dist_table({"distortion_sigma", "mle_mean_err",
                             "bmf_mean_err", "kappa0", "nu0"});
    const core::GaussianMoments early_raw =
        core::MleEstimator().estimate(data.early.samples()).moments;
    Vector sigma(early_raw.dimension());
    for (std::size_t i = 0; i < sigma.size(); ++i) {
      sigma[i] = std::sqrt(early_raw.covariance(i, i));
    }
    for (const double distortion : {0.0, 0.25, 0.5, 1.0, 2.0}) {
      linalg::Matrix shifted = data.early.samples();
      for (std::size_t r = 0; r < shifted.rows(); ++r) {
        for (std::size_t c = 0; c < shifted.cols(); ++c) {
          shifted(r, c) += distortion * sigma[c];
        }
      }
      const circuit::Dataset early_shifted(data.early.metric_names(),
                                           std::move(shifted));
      const core::MomentExperiment experiment(
          early_shifted, data.early_nominal, data.late, data.late_nominal);
      const core::ExperimentResult res = experiment.run(cfg);
      dist_table.add_numeric_row(
          {distortion, res.rows[0].mle_mean_error,
           res.rows[0].bmf_mean_error, res.rows[0].median_kappa0,
           res.rows[0].median_nu0});
    }
    dist_table.print(std::cout);
    std::printf(
        "# as the prior mean degrades, kappa0 collapses and BMF's mean "
        "error approaches (never greatly exceeds) MLE's.\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_prior_quality: %s\n", e.what());
    return 1;
  }
  return 0;
}
