// Shared machinery for the figure-reproduction benches.
//
// Each bench binary regenerates one of the paper's evaluation artifacts
// (Figure 4(a)/4(b)/5(a)/5(b), the cost-reduction claims, or an ablation).
// The Monte-Carlo populations are expensive relative to the estimation
// sweep, so they are cached as CSV under --data-dir and shared between
// binaries.
#pragma once

#include <string>

#include "circuit/dataset.hpp"
#include "common/cli.hpp"
#include "core/experiment.hpp"

namespace bmfusion::bench {

/// One stage pair ready for a MomentExperiment.
struct StageData {
  circuit::Dataset early;
  linalg::Vector early_nominal;
  circuit::Dataset late;
  linalg::Vector late_nominal;
};

/// Op-amp populations (Section 5.1): 5000 samples per stage by default,
/// cached in `data_dir`. `sample_count` scales the population for quick
/// runs.
[[nodiscard]] StageData load_opamp_data(const std::string& data_dir,
                                        std::size_t sample_count);

/// Flash-ADC populations (Section 5.2): 1000 samples per stage by default.
[[nodiscard]] StageData load_adc_data(const std::string& data_dir,
                                      std::size_t sample_count);

/// Registers the flags shared by every figure bench: --data-dir, --runs,
/// --samples, --quick, --csv.
void add_common_flags(CliParser& cli, std::size_t default_samples);

/// Experiment configuration derived from the parsed flags. `--quick`
/// divides the repetition count by 10 (min 3) for smoke runs.
[[nodiscard]] core::ExperimentConfig experiment_config_from_cli(
    const CliParser& cli, std::vector<std::size_t> sample_sizes);

/// Prints one figure: a row per sample size with the MLE and BMF error
/// series (`use_cov` picks eq. 38 over eq. 37), median selected
/// hyper-parameters, and the BMF-vs-MLE cost-reduction factor. When
/// `csv_path` is non-empty the table is also written there.
void print_error_figure(const std::string& title,
                        const core::ExperimentResult& result, bool use_cov,
                        const std::string& csv_path);

/// Appends one JSON value (`record`, typically an object literal) to the
/// JSON array stored at `path`, creating the file as a one-element array
/// when absent or empty. The BENCH_*.json perf-trajectory files are grown
/// this way so every run keeps the full history. Throws DataError when the
/// existing file is not a JSON array or the write fails.
void append_json_record(const std::string& path, const std::string& record);

/// Shared run-metadata fragment for BENCH_*.json records (no surrounding
/// braces): label/git/date taken from the CLI's --label/--git/--date flags
/// (git falls back to $BMF_GIT_SHA when the flag is empty), plus the build
/// type, the worker thread count, and the compile-time telemetry state.
[[nodiscard]] std::string run_metadata_json(const CliParser& cli,
                                            std::size_t threads);

}  // namespace bmfusion::bench
