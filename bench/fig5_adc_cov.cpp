// Figure 5(b) reproduction: flash ADC (0.18 um) — estimation error of the
// late-stage COVARIANCE MATRIX (eq. 38) vs. number of late-stage samples.
//
// Expected shape (paper Section 5.2): BMF beats MLE by >10x; nu0 selected
// large (~559 at n = 32 in the paper).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bmfusion;
  CliParser cli(
      "fig5_adc_cov: paper Figure 5(b) — flash-ADC covariance-matrix error "
      "vs late-stage sample count");
  bench::add_common_flags(cli, 1000);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::StageData data = bench::load_adc_data(
        cli.get_string("data-dir"),
        static_cast<std::size_t>(cli.get_int("samples")));
    const core::MomentExperiment experiment(data.early, data.early_nominal,
                                            data.late, data.late_nominal);
    const core::ExperimentConfig cfg = bench::experiment_config_from_cli(
        cli, {8, 16, 32, 64, 128, 256});
    const core::ExperimentResult result = experiment.run(cfg);
    bench::print_error_figure(
        "Figure 5(b): flash-ADC late-stage covariance-matrix error (eq. 38)",
        result, /*use_cov=*/true, cli.get_string("csv"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig5_adc_cov: %s\n", e.what());
    return 1;
  }
  return 0;
}
