// Ablation over metric-vector dimensionality: synthetic jointly Gaussian
// metrics with a random correlation structure, d from 2 to 10. Shows how
// the BMF advantage scales as the number of covariance entries (d(d+1)/2)
// outgrows the sample budget.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/mle.hpp"
#include "linalg/spd.hpp"
#include "stats/mvn.hpp"
#include "stats/rng.hpp"

namespace {

using namespace bmfusion;
using linalg::Matrix;
using linalg::Vector;

/// Random correlation-like SPD matrix with unit diagonal.
Matrix random_correlation(std::size_t d, stats::Xoshiro256pp& rng) {
  Matrix b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) b(i, j) = rng.next_uniform(-1, 1);
  }
  Matrix cov = b * b.transposed();
  for (std::size_t i = 0; i < d; ++i) cov(i, i) += 0.5 * static_cast<double>(d);
  return linalg::covariance_to_correlation(cov);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmfusion;
  CliParser cli(
      "ablation_dimension: BMF-vs-MLE across metric dimensionality "
      "(synthetic correlated Gaussians, n = 16)");
  bench::add_common_flags(cli, 0);
  try {
    if (!cli.parse(argc, argv)) return 0;
    std::size_t reps = static_cast<std::size_t>(cli.get_int("runs")) / 2 + 1;
    if (cli.get_bool("quick")) reps = std::max<std::size_t>(3, reps / 10);
    constexpr std::size_t kN = 16;

    std::printf("\nAblation: metric dimensionality (synthetic, n=16)\n");
    ConsoleTable table({"d", "mle_mean_err", "bmf_mean_err", "mle_cov_err",
                        "bmf_cov_err", "cov_ratio"});
    for (const std::size_t d : {2u, 3u, 5u, 8u, 10u}) {
      stats::Xoshiro256pp setup_rng(500 + d);
      core::GaussianMoments truth;
      truth.mean = Vector(d);
      for (std::size_t i = 0; i < d; ++i) {
        truth.mean[i] = setup_rng.next_uniform(-1, 1);
      }
      truth.covariance = random_correlation(d, setup_rng);
      // The "early stage" sees a slightly perturbed mean (0.2 sigma).
      core::GaussianMoments early = truth;
      for (std::size_t i = 0; i < d; ++i) {
        early.mean[i] += 0.2 * setup_rng.next_uniform(-1, 1);
      }
      const stats::MultivariateNormal mvn(truth.mean, truth.covariance);
      const core::MleEstimator mle_estimator;
      const core::BmfEstimator bmf_estimator(
          core::EarlyStageKnowledge{early, early.mean},
          core::BmfConfig{}.with_shift_scale(false));

      double mle_mean = 0.0, bmf_mean = 0.0, mle_cov = 0.0, bmf_cov = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        stats::Xoshiro256pp rng(1000 * d + r);
        const Matrix samples = mvn.sample_matrix(rng, kN);
        const core::EstimateResult mle = mle_estimator.estimate(samples);
        mle_mean += core::mean_error(mle.moments.mean, truth.mean);
        mle_cov += core::covariance_error(mle.moments.covariance,
                                          truth.covariance);
        const core::EstimateResult bmf = bmf_estimator.estimate(samples);
        bmf_mean += core::mean_error(bmf.scaled_moments.mean, truth.mean);
        bmf_cov += core::covariance_error(bmf.scaled_moments.covariance,
                                          truth.covariance);
      }
      const double inv = 1.0 / static_cast<double>(reps);
      table.add_numeric_row({static_cast<double>(d), mle_mean * inv,
                             bmf_mean * inv, mle_cov * inv, bmf_cov * inv,
                             (mle_cov * inv) / (bmf_cov * inv)});
    }
    table.print(std::cout);
    std::printf(
        "# the covariance advantage grows with d: MLE must fill d(d+1)/2 "
        "entries from n=16 samples while BMF starts from the prior.\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_dimension: %s\n", e.what());
    return 1;
  }
  return 0;
}
