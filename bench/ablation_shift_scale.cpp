// Ablation of the Section 4.1 performance shift & scaling: how much
// accuracy does BMF lose when the normalization is skipped and the raw
// metric values (spanning ~7 orders of magnitude between bandwidth in Hz
// and power in W) are fused directly?
//
// Errors are always evaluated in the scaled space (the paper's error
// definition), whichever way the estimate was produced.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/estimator.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace {

using namespace bmfusion;
using linalg::Matrix;
using linalg::Vector;

Matrix gather(const Matrix& samples, stats::Xoshiro256pp& rng,
              std::size_t n) {
  Matrix out(n, samples.cols());
  std::vector<std::size_t> pool(samples.rows());
  for (std::size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(pool.size() - i));
    std::swap(pool[i], pool[j]);
    out.set_row(i, samples.row(pool[i]));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmfusion;
  CliParser cli(
      "ablation_shift_scale: BMF accuracy with and without the Section 4.1 "
      "shift/scale normalization (op-amp workload)");
  bench::add_common_flags(cli, 5000);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::StageData data = bench::load_opamp_data(
        cli.get_string("data-dir"),
        static_cast<std::size_t>(cli.get_int("samples")));

    const core::MleEstimator mle_estimator;
    const core::GaussianMoments early_raw =
        mle_estimator.estimate(data.early.samples()).moments;
    const core::StageTransforms transforms = core::make_stage_transforms(
        data.early_nominal, data.late_nominal, early_raw);
    const core::GaussianMoments exact_scaled =
        mle_estimator.estimate(transforms.late.apply(data.late.samples()))
            .moments;

    const core::BmfEstimator with_ss(
        core::EarlyStageKnowledge{early_raw, data.early_nominal},
        core::BmfConfig{}.with_shift_scale(true));
    const core::BmfEstimator without_ss(
        core::EarlyStageKnowledge{early_raw, data.early_nominal},
        core::BmfConfig{}.with_shift_scale(false));

    std::size_t reps =
        static_cast<std::size_t>(cli.get_int("runs")) / 2 + 1;
    if (cli.get_bool("quick")) reps = std::max<std::size_t>(3, reps / 10);

    std::printf("\nAblation: Section 4.1 shift & scaling (op-amp)\n");
    ConsoleTable table({"n", "mean_err_with", "mean_err_without",
                        "cov_err_with", "cov_err_without"});
    for (const std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
      std::vector<double> m_with, m_without, c_with, c_without;
      for (std::size_t r = 0; r < reps; ++r) {
        stats::Xoshiro256pp rng(9000 + 31 * n + r);
        const Matrix subset = gather(data.late.samples(), rng, n);

        const core::BmfResult a = with_ss.estimate(subset,
                                                   data.late_nominal);
        m_with.push_back(
            core::mean_error(a.scaled_moments.mean, exact_scaled.mean));
        c_with.push_back(core::covariance_error(
            a.scaled_moments.covariance, exact_scaled.covariance));

        const core::BmfResult b =
            without_ss.estimate(subset, data.late_nominal);
        const core::GaussianMoments b_scaled =
            transforms.late.apply(b.moments);
        m_without.push_back(
            core::mean_error(b_scaled.mean, exact_scaled.mean));
        c_without.push_back(core::covariance_error(
            b_scaled.covariance, exact_scaled.covariance));
      }
      table.add_numeric_row({static_cast<double>(n), stats::mean_of(m_with),
                             stats::mean_of(m_without),
                             stats::mean_of(c_with),
                             stats::mean_of(c_without)});
    }
    table.print(std::cout);
    std::printf(
        "# The MAP fuse is affine-equivariant, so the per-dimension\n"
        "# *scaling* changes nothing; what Section 4.1 buys is the per-stage\n"
        "# *shift*: without it the prior mean is off by the nominal\n"
        "# schematic-vs-extracted gap, costing mean accuracy at the\n"
        "# smallest n until cross validation rescues the fuse by driving\n"
        "# kappa0 down (covariance is unaffected either way).\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_shift_scale: %s\n", e.what());
    return 1;
  }
  return 0;
}
