// Ablation of the Section 4.2 cross validation: sensitivity of accuracy and
// runtime to the fold count Q and the (nu0, kappa0) grid resolution.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace bmfusion;
  CliParser cli(
      "ablation_cv: Q-fold count and grid-resolution sweep for the 2-D "
      "hyper-parameter cross validation (op-amp workload, n = 32)");
  bench::add_common_flags(cli, 5000);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::StageData data = bench::load_opamp_data(
        cli.get_string("data-dir"),
        static_cast<std::size_t>(cli.get_int("samples")));
    const core::MomentExperiment experiment(data.early, data.early_nominal,
                                            data.late, data.late_nominal);

    // Fixed subset used to probe the evaluated grid itself (how many points
    // survive, how peaked the score surface is) at each configuration.
    linalg::Matrix probe(32, experiment.late_scaled().cols());
    for (std::size_t i = 0; i < probe.rows(); ++i) {
      probe.set_row(i, experiment.late_scaled().row(i));
    }

    std::printf("\nAblation: cross-validation configuration (op-amp, n=32)\n");
    ConsoleTable table({"folds", "grid", "bmf_mean_err", "bmf_cov_err",
                        "kappa0", "nu0", "valid_pts", "score_spread",
                        "seconds"});
    for (const std::size_t folds : {2u, 4u, 8u}) {
      for (const std::size_t grid : {6u, 12u, 20u}) {
        core::ExperimentConfig cfg =
            bench::experiment_config_from_cli(cli, {32});
        cfg.repetitions = std::max<std::size_t>(3, cfg.repetitions / 4);
        cfg.cv = core::CrossValidationConfig{}
                     .with_folds(folds)
                     .with_grid(grid, grid)
                     .with_threads(cfg.threads);
        Stopwatch sw;
        const core::ExperimentResult res = experiment.run(cfg);
        const double seconds = sw.seconds();

        // Grid diagnostics through the result's grid() accessor.
        const core::CrossValidationResult probe_sel =
            core::select_hyperparameters(experiment.early_scaled(), probe,
                                         cfg.cv);
        std::size_t valid = 0;
        double worst_finite = probe_sel.score;
        for (const core::GridScore& gs : probe_sel.grid()) {
          if (std::isfinite(gs.score)) {
            ++valid;
            worst_finite = std::min(worst_finite, gs.score);
          }
        }
        table.add_numeric_row(
            {static_cast<double>(folds), static_cast<double>(grid),
             res.rows[0].bmf_mean_error, res.rows[0].bmf_cov_error,
             res.rows[0].median_kappa0, res.rows[0].median_nu0,
             static_cast<double>(valid), probe_sel.score - worst_finite,
             seconds});
      }
    }
    table.print(std::cout);
    std::printf(
        "# accuracy saturates at moderate grids; runtime grows as "
        "folds x grid^2.\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_cv: %s\n", e.what());
    return 1;
  }
  return 0;
}
