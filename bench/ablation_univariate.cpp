// Comparison against the prior art this paper extends: univariate BMF
// (normal-gamma per metric, ref. [7]). Quantifies the motivation in
// Section 2 — per-metric fusion cannot capture cross-metric correlations,
// which the parametric yield of multi-spec circuits depends on.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace bmfusion;
  CliParser cli(
      "ablation_univariate: multivariate BMF vs the univariate (per-metric) "
      "BMF baseline of ref. [7], on both circuit workloads");
  bench::add_common_flags(cli, 5000);
  cli.add_flag("adc-samples", "1000", "ADC Monte-Carlo population size");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string dir = cli.get_string("data-dir");

    struct Workload {
      const char* name;
      bench::StageData data;
      std::vector<std::size_t> sizes;
    };
    Workload workloads[] = {
        {"opamp",
         bench::load_opamp_data(
             dir, static_cast<std::size_t>(cli.get_int("samples"))),
         {8, 32, 128}},
        {"adc",
         bench::load_adc_data(
             dir, static_cast<std::size_t>(cli.get_int("adc-samples"))),
         {8, 32, 128}},
    };

    std::printf("\nBaseline comparison: univariate vs multivariate BMF\n");
    ConsoleTable table({"circuit", "n", "mle_cov", "uni_cov", "multi_cov",
                        "uni_mean", "multi_mean"});
    for (Workload& w : workloads) {
      const core::MomentExperiment experiment(
          w.data.early, w.data.early_nominal, w.data.late,
          w.data.late_nominal);
      core::ExperimentConfig cfg =
          bench::experiment_config_from_cli(cli, w.sizes);
      cfg.repetitions = std::max<std::size_t>(3, cfg.repetitions / 2);
      cfg.include_univariate = true;
      const core::ExperimentResult res = experiment.run(cfg);
      for (const core::ExperimentRow& row : res.rows) {
        table.add_row({w.name, format_double(static_cast<double>(row.n), 4),
                       format_double(row.mle_cov_error, 5),
                       format_double(row.uni_cov_error, 5),
                       format_double(row.bmf_cov_error, 5),
                       format_double(row.uni_mean_error, 5),
                       format_double(row.bmf_mean_error, 5)});
      }
    }
    table.print(std::cout);
    std::printf(
        "# the univariate covariance error floors at the off-diagonal mass "
        "it cannot represent; the multivariate estimator does not.\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_univariate: %s\n", e.what());
    return 1;
  }
  return 0;
}
