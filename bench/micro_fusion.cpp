// micro_fusion: accuracy + latency bench for the multi-population fusion
// engine.
//
// Builds N synthetic populations whose true means deviate from their
// early-stage anchors by a shared (strongly correlated) shift — the
// corner-sweep structure the fusion engine exists for. Siblings are well
// sampled; one held-out population gets a small late-stage budget. Each
// trial compares the fused estimate of the held-out mean against an
// independent BmfEstimator built from the exact same budget, and times the
// joint snapshot. The --json flag appends a "micro_fusion" record to the
// BENCH_fusion.json perf trajectory; scripts/bench_check.py enforces an
// absolute budget on the fused/independent RMSE ratio and the snapshot
// latency, so a regression that quietly disables borrowing fails CI.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "core/bmf_estimator.hpp"
#include "fusion/multi_population.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "stats/rng.hpp"

namespace {

using bmfusion::core::BmfEstimator;
using bmfusion::core::EstimateResult;
using bmfusion::fusion::FusionConfig;
using bmfusion::fusion::FusionSnapshot;
using bmfusion::fusion::MultiPopulationEstimator;
using bmfusion::fusion::PopulationSpec;
using bmfusion::linalg::Matrix;
using bmfusion::linalg::Vector;

double next_gaussian(bmfusion::stats::Xoshiro256pp& rng) {
  const double u = std::max(rng.next_double(), 1e-300);
  const double v = rng.next_double();
  return std::sqrt(-2.0 * std::log(u)) * std::cos(6.283185307179586 * v);
}

Matrix gaussian_samples(std::size_t rows, const Vector& mean,
                        const Vector& sigma,
                        bmfusion::stats::Xoshiro256pp& rng) {
  Matrix out(rows, mean.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < mean.size(); ++c) {
      out(r, c) = mean[c] + sigma[c] * next_gaussian(rng);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bmfusion::CliParser cli(
      "Benchmarks multi-population fusion: held-out corner accuracy of the "
      "fused estimate vs an independent BMF at the same late-stage budget, "
      "plus joint-snapshot latency.");
  cli.add_flag("populations", "4", "populations in the joint model");
  cli.add_flag("dim", "3", "metric dimension");
  cli.add_flag("trials", "12", "independent trials to average");
  cli.add_flag("held-samples", "12", "late samples at the held-out corner");
  cli.add_flag("sibling-samples", "300", "late samples per sibling corner");
  cli.add_flag("correlation", "0.9", "true inter-population correlation");
  cli.add_flag("quick", "false", "divide trials by 4 (min 3)");
  cli.add_flag("json", "", "append the results to this JSON array file");
  cli.add_flag("label", "", "free-form label for the JSON record");
  cli.add_flag("git", "", "git revision for the JSON record");
  cli.add_flag("date", "", "ISO date for the JSON record");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::size_t populations =
        static_cast<std::size_t>(std::max(2L, cli.get_int("populations")));
    const std::size_t dim =
        static_cast<std::size_t>(std::max(1L, cli.get_int("dim")));
    std::size_t trials =
        static_cast<std::size_t>(std::max(1L, cli.get_int("trials")));
    if (cli.get_bool("quick")) trials = std::max<std::size_t>(3, trials / 4);
    const std::size_t held =
        static_cast<std::size_t>(std::max(8L, cli.get_int("held-samples")));
    const std::size_t sibling = static_cast<std::size_t>(
        std::max(16L, cli.get_int("sibling-samples")));
    const double rho = cli.get_double("correlation");
    const std::size_t held_out = populations - 1;

    FusionConfig config;
    config.bmf.apply_shift_scale = false;
    config.bmf.cv.kappa_points = 6;
    config.bmf.cv.nu_points = 6;
    config.shrinkage = 0.1;

    Matrix prior_correlation = Matrix::identity(populations);
    for (std::size_t r = 0; r < populations; ++r) {
      for (std::size_t c = 0; c < populations; ++c) {
        if (r != c) prior_correlation(r, c) = rho;
      }
    }

    double fused_sq = 0.0;
    double independent_sq = 0.0;
    std::size_t terms = 0;
    std::vector<double> snapshot_us;
    snapshot_us.reserve(trials);
    double observe_rows = 0.0;
    double observe_s = 0.0;

    for (std::size_t trial = 0; trial < trials; ++trial) {
      std::vector<PopulationSpec> specs(populations);
      for (std::size_t p = 0; p < populations; ++p) {
        specs[p].name = "corner" + std::to_string(p);
        Vector mean(dim);
        Matrix covariance = Matrix::zeros(dim, dim);
        for (std::size_t c = 0; c < dim; ++c) {
          mean[c] = 0.1 * static_cast<double>(c);
          covariance(c, c) = 0.4 + 0.1 * static_cast<double>(c);
        }
        specs[p].early.moments.mean = mean;
        specs[p].early.moments.covariance = covariance;
        specs[p].early.nominal = mean;
      }
      MultiPopulationEstimator fused(specs, config);
      fused.set_correlation(prior_correlation);

      Matrix held_samples(1, 1);
      Vector truth(dim);
      for (std::size_t p = 0; p < populations; ++p) {
        // Shared anchor deviation, mildly modulated per population.
        const double scale =
            1.0 + 0.08 * std::sin(static_cast<double>(p) * 2.1);
        Vector mean = specs[p].early.moments.mean;
        Vector sigma(dim);
        for (std::size_t c = 0; c < dim; ++c) {
          mean[c] += scale * (c % 2 == 0 ? 0.45 : -0.35);
          sigma[c] = std::sqrt(specs[p].early.moments.covariance(c, c));
        }
        bmfusion::stats::Xoshiro256pp rng(10'000 * (trial + 1) + p);
        const std::size_t budget = p == held_out ? held : sibling;
        const Matrix draws = gaussian_samples(budget, mean, sigma, rng);
        const auto t0 = std::chrono::steady_clock::now();
        fused.observe(p, draws);
        observe_s += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
        observe_rows += static_cast<double>(budget);
        if (p == held_out) {
          held_samples = draws;
          truth = mean;
        }
      }

      const auto t0 = std::chrono::steady_clock::now();
      const FusionSnapshot snapshot = fused.snapshot();
      snapshot_us.push_back(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - t0)
                                .count());

      BmfEstimator solo(specs[held_out].early, config.bmf);
      solo.observe(held_samples);
      const EstimateResult independent = solo.snapshot();
      for (std::size_t c = 0; c < dim; ++c) {
        const double fe =
            snapshot.populations[held_out].fused.moments.mean[c] - truth[c];
        const double ie = independent.moments.mean[c] - truth[c];
        fused_sq += fe * fe;
        independent_sq += ie * ie;
        ++terms;
      }
    }

    const double fused_rmse =
        std::sqrt(fused_sq / static_cast<double>(terms));
    const double independent_rmse =
        std::sqrt(independent_sq / static_cast<double>(terms));
    const double ratio =
        independent_rmse > 0.0 ? fused_rmse / independent_rmse : 1.0;
    std::sort(snapshot_us.begin(), snapshot_us.end());
    const double snapshot_p50 = snapshot_us[snapshot_us.size() / 2];
    const double observe_rows_per_s =
        observe_s > 0.0 ? observe_rows / observe_s : 0.0;

    std::printf(
        "micro_fusion: populations=%zu dim=%zu trials=%zu held=%zu "
        "sibling=%zu rho=%.2f\n",
        populations, dim, trials, held, sibling, rho);
    std::printf("  %-28s %12.5f\n", "held-out fused RMSE", fused_rmse);
    std::printf("  %-28s %12.5f\n", "held-out independent RMSE",
                independent_rmse);
    std::printf("  %-28s %12.3f\n", "fused/independent ratio", ratio);
    std::printf("  %-28s %12.1f us\n", "joint snapshot p50", snapshot_p50);
    std::printf("  %-28s %12.0f rows/s\n", "observe throughput",
                observe_rows_per_s);

    const std::string json_path = cli.get_string("json");
    if (!json_path.empty()) {
      char measurements[512];
      std::snprintf(
          measurements, sizeof measurements,
          "\"populations\": %zu, \"dim\": %zu, \"trials\": %zu, "
          "\"held_samples\": %zu, \"sibling_samples\": %zu, "
          "\"fused_rmse\": %.6f, \"independent_rmse\": %.6f, "
          "\"rmse_ratio\": %.4f, \"snapshot_p50_us\": %.1f, "
          "\"observe_rows_per_s\": %.0f",
          populations, dim, trials, held, sibling, fused_rmse,
          independent_rmse, ratio, snapshot_p50, observe_rows_per_s);
      const std::string record =
          "{\"bench\": \"micro_fusion\", " +
          bmfusion::bench::run_metadata_json(cli, 1) + ", " + measurements +
          "}";
      bmfusion::bench::append_json_record(json_path, record);
      std::printf("  record appended to %s\n", json_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_fusion: %s\n", e.what());
    return 1;
  }
  return 0;
}
