// Ablation: the paper's Q-fold cross validation (Section 4.2) vs the
// closed-form model-evidence (empirical Bayes) hyper-parameter selection.
//
// Evidence selection costs one posterior update per grid point (no folds)
// and works from a single sample; this bench compares the two selectors'
// accuracy and runtime on the op-amp workload.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/mle.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace {

using namespace bmfusion;
using linalg::Matrix;

Matrix gather(const Matrix& samples, stats::Xoshiro256pp& rng,
              std::size_t n) {
  Matrix out(n, samples.cols());
  std::vector<std::size_t> pool(samples.rows());
  for (std::size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(pool.size() - i));
    std::swap(pool[i], pool[j]);
    out.set_row(i, samples.row(pool[i]));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmfusion;
  CliParser cli(
      "ablation_evidence: cross validation vs closed-form model evidence "
      "for hyper-parameter selection (op-amp workload)");
  bench::add_common_flags(cli, 5000);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::StageData data = bench::load_opamp_data(
        cli.get_string("data-dir"),
        static_cast<std::size_t>(cli.get_int("samples")));
    const core::MomentExperiment experiment(data.early, data.early_nominal,
                                            data.late, data.late_nominal);
    const core::GaussianMoments& early = experiment.early_scaled();
    const core::GaussianMoments& exact = experiment.exact_scaled();
    const Matrix& late = experiment.late_scaled();

    std::size_t reps = static_cast<std::size_t>(cli.get_int("runs")) / 2 + 1;
    if (cli.get_bool("quick")) reps = std::max<std::size_t>(3, reps / 10);

    std::printf("\nAblation: CV vs evidence hyper-parameter selection\n");
    ConsoleTable table({"n", "selector", "mean_err", "cov_err", "kappa0",
                        "nu0", "ms_per_fit"});
    for (const std::size_t n : {4u, 8u, 32u, 128u}) {
      for (const bool use_evidence : {false, true}) {
        if (!use_evidence && n < 2) continue;
        double mean_err = 0.0, cov_err = 0.0, total_ms = 0.0;
        std::vector<double> kappas, nus;
        for (std::size_t r = 0; r < reps; ++r) {
          stats::Xoshiro256pp rng(4200 + 17 * n + r);
          const Matrix subset = gather(late, rng, n);
          Stopwatch sw;
          const core::CrossValidationResult sel =
              use_evidence
                  ? core::select_hyperparameters_evidence(early, subset)
                  : core::select_hyperparameters(early, subset);
          total_ms += sw.milliseconds();
          const core::GaussianMoments map = core::BmfEstimator::fuse_at(
              early, subset, sel.kappa0, sel.nu0);
          mean_err += core::mean_error(map.mean, exact.mean);
          cov_err += core::covariance_error(map.covariance,
                                            exact.covariance);
          kappas.push_back(sel.kappa0);
          nus.push_back(sel.nu0);
        }
        const double inv = 1.0 / static_cast<double>(reps);
        table.add_row({format_double(static_cast<double>(n), 4),
                       use_evidence ? "evidence" : "cv",
                       format_double(mean_err * inv, 5),
                       format_double(cov_err * inv, 5),
                       format_double(stats::median(kappas), 4),
                       format_double(stats::median(nus), 4),
                       format_double(total_ms * inv, 4)});
      }
    }
    table.print(std::cout);
    std::printf(
        "# evidence needs no folds (works at n=4) and is ~Q-fold cheaper "
        "per grid point at comparable accuracy.\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_evidence: %s\n", e.what());
    return 1;
  }
  return 0;
}
