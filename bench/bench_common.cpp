#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>

#include "circuit/flash_adc.hpp"
#include "circuit/montecarlo.hpp"
#include "circuit/opamp.hpp"
#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "telemetry/telemetry.hpp"

namespace bmfusion::bench {

namespace {

using circuit::Dataset;
using circuit::DesignStage;
using circuit::MonteCarloConfig;
using circuit::ProcessModel;
using linalg::Vector;

/// Loads `path` when present, else runs `generate` and caches the result.
Dataset load_or_generate(const std::string& path,
                         const std::function<Dataset()>& generate) {
  if (std::filesystem::exists(path)) {
    std::printf("# using cached %s\n", path.c_str());
    return Dataset::load_csv(path);
  }
  telemetry::Stopwatch sw;
  Dataset ds = generate();
  std::printf("# generated %s (%zu samples, %.1f s)\n", path.c_str(),
              ds.sample_count(), sw.seconds());
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  ds.save_csv(path);
  return ds;
}

std::string tagged(const std::string& dir, const std::string& base,
                   std::size_t count) {
  return dir + "/" + base + "_" + std::to_string(count) + ".csv";
}

}  // namespace

StageData load_opamp_data(const std::string& data_dir,
                          std::size_t sample_count) {
  const circuit::TwoStageOpAmp early_bench(DesignStage::kSchematic,
                                           ProcessModel::cmos45());
  const circuit::TwoStageOpAmp late_bench(DesignStage::kPostLayout,
                                          ProcessModel::cmos45());
  const MonteCarloConfig cfg =
      MonteCarloConfig{}.with_sample_count(sample_count);
  Dataset early = load_or_generate(
      tagged(data_dir, "opamp_early", sample_count), [&] {
        return run_monte_carlo(early_bench, MonteCarloConfig(cfg).with_seed(11));
      });
  Dataset late = load_or_generate(
      tagged(data_dir, "opamp_late", sample_count), [&] {
        return run_monte_carlo(late_bench, MonteCarloConfig(cfg).with_seed(22));
      });
  return StageData{std::move(early), early_bench.nominal_metrics(),
                   std::move(late), late_bench.nominal_metrics()};
}

StageData load_adc_data(const std::string& data_dir,
                        std::size_t sample_count) {
  const circuit::FlashAdc early_bench(DesignStage::kSchematic,
                                      ProcessModel::cmos180());
  const circuit::FlashAdc late_bench(DesignStage::kPostLayout,
                                     ProcessModel::cmos180());
  const MonteCarloConfig cfg =
      MonteCarloConfig{}.with_sample_count(sample_count);
  Dataset early = load_or_generate(
      tagged(data_dir, "adc_early", sample_count), [&] {
        return run_monte_carlo(early_bench, MonteCarloConfig(cfg).with_seed(33));
      });
  Dataset late = load_or_generate(
      tagged(data_dir, "adc_late", sample_count), [&] {
        return run_monte_carlo(late_bench, MonteCarloConfig(cfg).with_seed(44));
      });
  return StageData{std::move(early), early_bench.nominal_metrics(),
                   std::move(late), late_bench.nominal_metrics()};
}

void add_common_flags(CliParser& cli, std::size_t default_samples) {
  cli.add_flag("data-dir", "bench_data",
               "directory for cached Monte-Carlo populations");
  cli.add_flag("runs", "100",
               "repeated runs per sample size (paper: 100)");
  cli.add_flag("samples", std::to_string(default_samples),
               "Monte-Carlo population size per stage");
  cli.add_flag("quick", "false", "divide the run count by 10 (smoke mode)");
  cli.add_flag("csv", "", "also write the table to this CSV file");
  cli.add_flag("threads", "0", "worker threads (0 = hardware concurrency)");
}

core::ExperimentConfig experiment_config_from_cli(
    const CliParser& cli, std::vector<std::size_t> sample_sizes) {
  core::ExperimentConfig cfg;
  cfg.sample_sizes = std::move(sample_sizes);
  cfg.repetitions = static_cast<std::size_t>(cli.get_int("runs"));
  if (cli.get_bool("quick")) {
    cfg.repetitions = std::max<std::size_t>(3, cfg.repetitions / 10);
  }
  cfg.threads = static_cast<std::size_t>(cli.get_int("threads"));
  return cfg;
}

void print_error_figure(const std::string& title,
                        const core::ExperimentResult& result, bool use_cov,
                        const std::string& csv_path) {
  std::printf("\n%s\n", title.c_str());
  ConsoleTable table({"n", use_cov ? "mle_cov_error" : "mle_mean_error",
                      use_cov ? "bmf_cov_error" : "bmf_mean_error",
                      "mle_stderr", "bmf_stderr", "cost_reduction_x",
                      "median_kappa0", "median_nu0"});
  for (const core::ExperimentRow& row : result.rows) {
    const double mle = use_cov ? row.mle_cov_error : row.mle_mean_error;
    const double bmf = use_cov ? row.bmf_cov_error : row.bmf_mean_error;
    const double mle_se = use_cov ? row.mle_cov_stderr : row.mle_mean_stderr;
    const double bmf_se = use_cov ? row.bmf_cov_stderr : row.bmf_mean_stderr;
    table.add_numeric_row({static_cast<double>(row.n), mle, bmf, mle_se,
                           bmf_se,
                           core::cost_reduction_factor(result.rows, row.n,
                                                       use_cov),
                           row.median_kappa0, row.median_nu0});
  }
  table.print(std::cout);
  std::printf(
      "# prior (early-stage) error vs exact: mean %.4f, covariance %.4f\n",
      core::mean_error(result.early_scaled.mean, result.exact_scaled.mean),
      core::covariance_error(result.early_scaled.covariance,
                             result.exact_scaled.covariance));
  if (!csv_path.empty()) {
    write_csv_file(csv_path, table.to_csv());
    std::printf("# table written to %s\n", csv_path.c_str());
  }
}

namespace {

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string run_metadata_json(const CliParser& cli, std::size_t threads) {
  std::string git = cli.get_string("git");
  if (git.empty()) {
    if (const char* sha = std::getenv("BMF_GIT_SHA")) git = sha;
  }
  std::string out;
  out += "\"label\": \"" + json_escaped(cli.get_string("label")) + "\"";
  out += ", \"git\": \"" + json_escaped(git) + "\"";
  out += ", \"date\": \"" + json_escaped(cli.get_string("date")) + "\"";
#ifdef NDEBUG
  out += ", \"build\": \"-O3 -DNDEBUG\"";
#else
  out += ", \"build\": \"debug\"";
#endif
  out += ", \"threads\": " + std::to_string(threads);
  // Cores on the recording host: scaling gates must not expect speedups the
  // hardware cannot deliver (a 4-thread record from a 1-core container is
  // valid data, just not evidence about scaling).
  out += ", \"host_cores\": " + std::to_string(default_thread_count());
  out += std::string(", \"telemetry\": ") +
         (telemetry::enabled() ? "true" : "false");
  return out;
}

void append_json_record(const std::string& path, const std::string& record) {
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      content.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
  }
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!content.empty() && is_space(content.back())) content.pop_back();
  if (content.empty()) {
    // assign() rather than operator=(const char*): GCC 12's -Wrestrict
    // false-positives on the latter after the pop_back() loop above.
    content.assign(1, '[');
  } else {
    if (content.back() != ']') {
      throw DataError("append_json_record: not a JSON array: " + path);
    }
    content.pop_back();
    while (!content.empty() && is_space(content.back())) content.pop_back();
  }
  const bool first = !content.empty() && content.back() == '[';
  content += first ? "\n" : ",\n";
  content += record;
  content += "\n]\n";

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  if (!out.good()) {
    throw DataError("append_json_record: failed to write " + path);
  }
}

}  // namespace bmfusion::bench
