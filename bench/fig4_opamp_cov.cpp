// Figure 4(b) reproduction: two-stage op-amp (45 nm) — estimation error of
// the late-stage COVARIANCE MATRIX (eq. 38, Frobenius norm) vs. number of
// late-stage samples, MLE vs. BMF.
//
// Expected shape (paper Section 5.1): this is the paper's headline — BMF
// reaches MLE's accuracy with >16x fewer samples, because the covariance
// *shape* survives layout (cross validation picks a large nu0, ~557 in the
// paper at n = 32).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bmfusion;
  CliParser cli(
      "fig4_opamp_cov: paper Figure 4(b) — op-amp covariance-matrix error "
      "vs late-stage sample count");
  bench::add_common_flags(cli, 5000);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bench::StageData data = bench::load_opamp_data(
        cli.get_string("data-dir"),
        static_cast<std::size_t>(cli.get_int("samples")));
    const core::MomentExperiment experiment(data.early, data.early_nominal,
                                            data.late, data.late_nominal);
    const core::ExperimentConfig cfg = bench::experiment_config_from_cli(
        cli, {8, 16, 32, 64, 128, 256, 512});
    const core::ExperimentResult result = experiment.run(cfg);
    bench::print_error_figure(
        "Figure 4(b): op-amp late-stage covariance-matrix error (eq. 38)",
        result, /*use_cov=*/true, cli.get_string("csv"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig4_opamp_cov: %s\n", e.what());
    return 1;
  }
  return 0;
}
