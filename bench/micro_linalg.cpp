// Micro-benchmarks (google-benchmark) for the linear-algebra substrate at
// the sizes the estimation core actually uses (d = 5..20 covariances,
// ~15-unknown MNA systems).
#include <benchmark/benchmark.h>

#include "circuit/parasitic.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"
#include "stats/rng.hpp"

namespace {

using namespace bmfusion;
using linalg::Matrix;
using linalg::Vector;

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  stats::Xoshiro256pp rng(seed);
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.next_uniform(-1, 1);
  }
  Matrix a = b * b.transposed();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  a.symmetrize();
  return a;
}

void BM_CholeskyFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_spd(n, 1);
  for (auto _ : state) {
    linalg::Cholesky chol(a);
    benchmark::DoNotOptimize(chol.log_determinant());
  }
}
BENCHMARK(BM_CholeskyFactor)->Arg(5)->Arg(10)->Arg(20);

void BM_CholeskySolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Cholesky chol(random_spd(n, 2));
  Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chol.solve(b));
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(5)->Arg(10)->Arg(20);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_spd(n, 3);
  Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::Lu(a).solve(b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(10)->Arg(15)->Arg(30);

void BM_JacobiEigen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_spd(n, 4);
  for (auto _ : state) {
    linalg::JacobiEigenSolver eig(a);
    benchmark::DoNotOptimize(eig.min_eigenvalue());
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(5)->Arg(10)->Arg(20);

void BM_SparseCgLadder(benchmark::State& state) {
  // IR-drop solve of an n-segment parasitic ladder via sparse CG: the
  // workload dense LU cannot scale to.
  const auto n = static_cast<std::size_t>(state.range(0));
  circuit::WireModel wire;
  wire.segments = n;
  const circuit::RcLadder ladder(wire, 50.0, 1e-15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ladder.ir_drop_profile(1.0, 1e-4));
  }
}
BENCHMARK(BM_SparseCgLadder)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DenseLuLadderEquivalent(benchmark::State& state) {
  // The same tridiagonal system assembled dense and solved with LU, for
  // the scaling comparison against BM_SparseCgLadder.
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 2.0;
    if (i + 1 < n) {
      a(i, i + 1) = -1.0;
      a(i + 1, i) = -1.0;
    }
  }
  Vector b(n, 1e-4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::Lu(a).solve(b));
  }
}
BENCHMARK(BM_DenseLuLadderEquivalent)->Arg(100)->Arg(400);

void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_spd(n, 5);
  const Matrix b = random_spd(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_MatrixMultiply)->Arg(5)->Arg(20)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
